//! Hit/miss accounting, MPKI computation, and the PC-stride profiler that
//! backs the paper's Finding 3 (Fig. 3).

use serde::Serialize;
use std::collections::BTreeMap;

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Demand accesses (loads + stores reaching this level).
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines inserted (demand fills).
    pub fills: u64,
    /// Lines inserted by a prefetcher.
    pub prefetch_fills: u64,
    /// Demand hits on lines brought in by a prefetcher.
    pub prefetch_hits: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Lines invalidated by coherence actions.
    pub invalidations: u64,
}

impl CacheStats {
    pub fn record_hit(&mut self) {
        self.accesses += 1;
        self.hits += 1;
    }

    pub fn record_miss(&mut self) {
        self.accesses += 1;
        self.misses += 1;
    }

    /// Misses per kilo-instruction for a measurement window of
    /// `instructions` instructions.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.misses as f64 * 1000.0 / instructions as f64
    }

    /// Demand miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.misses as f64 / self.accesses as f64
    }

    /// Reset all counters (used at the warmup/measurement boundary;
    /// cache *state* is preserved).
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }

    pub fn save_state(&self, w: &mut simstate::StateSink) {
        w.put_u64(self.accesses);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.fills);
        w.put_u64(self.prefetch_fills);
        w.put_u64(self.prefetch_hits);
        w.put_u64(self.writebacks);
        w.put_u64(self.invalidations);
    }

    pub fn load_state(
        &mut self,
        r: &mut simstate::StateSource,
    ) -> Result<(), simstate::StateError> {
        self.accesses = r.get_u64()?;
        self.hits = r.get_u64()?;
        self.misses = r.get_u64()?;
        self.fills = r.get_u64()?;
        self.prefetch_fills = r.get_u64()?;
        self.prefetch_hits = r.get_u64()?;
        self.writebacks = r.get_u64()?;
        self.invalidations = r.get_u64()?;
        Ok(())
    }
}

/// Counters for the DRAM model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DramStats {
    pub reads: u64,
    pub writes: u64,
    pub row_hits: u64,
    pub row_misses: u64,
    pub row_conflicts: u64,
    /// Sum of (completion - issue) over all demand reads, for mean latency.
    pub total_read_latency: u64,
    /// Prefetches dropped because the target bank/bus was congested.
    pub prefetches_dropped: u64,
}

impl DramStats {
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    pub fn mean_read_latency(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.total_read_latency as f64 / self.reads as f64
    }

    pub fn row_hit_ratio(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            return 0.0;
        }
        self.row_hits as f64 / total as f64
    }

    pub fn reset(&mut self) {
        *self = DramStats::default();
    }

    pub fn save_state(&self, w: &mut simstate::StateSink) {
        w.put_u64(self.reads);
        w.put_u64(self.writes);
        w.put_u64(self.row_hits);
        w.put_u64(self.row_misses);
        w.put_u64(self.row_conflicts);
        w.put_u64(self.total_read_latency);
        w.put_u64(self.prefetches_dropped);
    }

    pub fn load_state(
        &mut self,
        r: &mut simstate::StateSource,
    ) -> Result<(), simstate::StateError> {
        self.reads = r.get_u64()?;
        self.writes = r.get_u64()?;
        self.row_hits = r.get_u64()?;
        self.row_misses = r.get_u64()?;
        self.row_conflicts = r.get_u64()?;
        self.total_read_latency = r.get_u64()?;
        self.prefetches_dropped = r.get_u64()?;
        Ok(())
    }
}

/// Aggregated statistics for one simulated core's memory system.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct HierStats {
    pub l1d: CacheStats,
    pub l2c: CacheStats,
    pub llc: CacheStats,
    pub sdc: CacheStats,
    pub dtlb: CacheStats,
    pub stlb: CacheStats,
    pub dram: DramStats,
    /// Accesses routed to the SDC path by the predictor.
    pub routed_to_sdc: u64,
    /// Accesses routed to the regular hierarchy.
    pub routed_to_l1d: u64,
    /// SDC misses that were served by a valid copy in the cache hierarchy
    /// (found via the directory probe) rather than DRAM.
    pub sdc_served_by_hierarchy: u64,
    /// SDC lines invalidated due to SDCDir evictions.
    pub sdcdir_evict_invalidations: u64,
}

impl HierStats {
    pub fn reset(&mut self) {
        *self = HierStats::default();
    }
}

/// The final result of simulating one workload window on one configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct SimResult {
    /// Instructions in the measurement window.
    pub instructions: u64,
    /// Cycles the measurement window took.
    pub cycles: u64,
    pub stats: HierStats,
}

impl SimResult {
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }

    pub fn l1d_mpki(&self) -> f64 {
        self.stats.l1d.mpki(self.instructions)
    }

    pub fn l2c_mpki(&self) -> f64 {
        self.stats.l2c.mpki(self.instructions)
    }

    pub fn llc_mpki(&self) -> f64 {
        self.stats.llc.mpki(self.instructions)
    }

    pub fn sdc_mpki(&self) -> f64 {
        self.stats.sdc.mpki(self.instructions)
    }

    /// Speedup of `self` relative to a baseline run of the same workload.
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        baseline.cycles as f64 / self.cycles as f64
    }
}

/// Geometric mean of a slice of ratios (> 0).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Stride-bucket histogram keyed on the magnitude of the block-address
/// stride between consecutive accesses from the same PC (Fig. 3).
///
/// Buckets follow the paper's x-axis: 0, 1, (10^0,10^1], (10^1,10^2], ...,
/// (10^5,10^6], >10^6.
pub const STRIDE_BUCKETS: usize = 9;

/// Human-readable bucket labels, index-aligned with the profiler output.
pub fn stride_bucket_label(i: usize) -> &'static str {
    match i {
        0 => "0",
        1 => "1",
        2 => "(10^0,10^1]",
        3 => "(10^1,10^2]",
        4 => "(10^2,10^3]",
        5 => "(10^3,10^4]",
        6 => "(10^4,10^5]",
        7 => "(10^5,10^6]",
        _ => ">10^6",
    }
}

/// Classify a block stride magnitude into its bucket index.
pub fn stride_bucket(stride: u64) -> usize {
    match stride {
        0 => 0,
        1 => 1,
        2..=10 => 2,
        11..=100 => 3,
        101..=1_000 => 4,
        1_001..=10_000 => 5,
        10_001..=100_000 => 6,
        100_001..=1_000_000 => 7,
        _ => 8,
    }
}

/// Per-bucket counts of accesses and of accesses served by DRAM.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StrideProfile {
    pub accesses: [u64; STRIDE_BUCKETS],
    pub dram_served: [u64; STRIDE_BUCKETS],
}

impl StrideProfile {
    /// Probability that an access in bucket `i` was served by DRAM.
    pub fn dram_probability(&self, i: usize) -> f64 {
        if self.accesses[i] == 0 {
            return 0.0;
        }
        self.dram_served[i] as f64 / self.accesses[i] as f64
    }
}

/// Observes the (PC, block address) stream and attributes each access to a
/// stride bucket; the caller reports whether the access reached DRAM.
#[derive(Debug, Default)]
pub struct StrideProfiler {
    last_block: BTreeMap<u16, u64>,
    pub profile: StrideProfile,
}

impl StrideProfiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one access. `served_by_dram` is true if the demand request
    /// missed everywhere and was satisfied from main memory.
    // simlint::allow(panic-path): stride bucket indexes are clamped to the histogram size when computed
    pub fn observe(&mut self, pc: u16, block: u64, served_by_dram: bool) {
        let bucket = match self.last_block.insert(pc, block) {
            Some(prev) => stride_bucket(prev.abs_diff(block)),
            // First access from a PC has no stride; treat as stride 0,
            // matching the predictor's "no information" behaviour.
            None => 0,
        };
        self.profile.accesses[bucket] += 1;
        if served_by_dram {
            self.profile.dram_served[bucket] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_basic() {
        let mut s = CacheStats::default();
        for _ in 0..10 {
            s.record_miss();
        }
        for _ in 0..90 {
            s.record_hit();
        }
        assert_eq!(s.accesses, 100);
        assert!((s.mpki(1000) - 10.0).abs() < 1e-12);
        assert!((s.miss_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mpki_zero_instructions() {
        let s = CacheStats { misses: 5, ..Default::default() };
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[1.2, 1.2, 1.2]) - 1.2).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_mixed() {
        let g = geomean(&[2.0, 0.5]);
        assert!((g - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stride_buckets_cover_paper_ranges() {
        assert_eq!(stride_bucket(0), 0);
        assert_eq!(stride_bucket(1), 1);
        assert_eq!(stride_bucket(2), 2);
        assert_eq!(stride_bucket(10), 2);
        assert_eq!(stride_bucket(11), 3);
        assert_eq!(stride_bucket(100_000), 6);
        assert_eq!(stride_bucket(100_001), 7);
        assert_eq!(stride_bucket(1_000_000), 7);
        assert_eq!(stride_bucket(1_000_001), 8);
        assert_eq!(stride_bucket(u64::MAX), 8);
    }

    #[test]
    fn profiler_tracks_per_pc_strides() {
        let mut p = StrideProfiler::new();
        p.observe(1, 100, false); // first access: bucket 0
        p.observe(1, 101, true); // stride 1
        p.observe(1, 201, true); // stride 100 -> bucket 3
        p.observe(2, 500, false); // different PC: first access
        assert_eq!(p.profile.accesses[0], 2);
        assert_eq!(p.profile.accesses[1], 1);
        assert_eq!(p.profile.accesses[3], 1);
        assert_eq!(p.profile.dram_served[1], 1);
        assert!((p.profile.dram_probability(1) - 1.0).abs() < 1e-12);
        assert_eq!(p.profile.dram_probability(5), 0.0);
    }

    #[test]
    fn sim_result_speedup() {
        let base = SimResult { instructions: 1000, cycles: 2000, ..Default::default() };
        let fast = SimResult { instructions: 1000, cycles: 1000, ..Default::default() };
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
        assert!((base.ipc() - 0.5).abs() < 1e-12);
    }
}
