//! Multi-core simulation engine: N cores with private memory sides sharing
//! one LLC + DRAM backend, interleaved on a common timeline (Section IV-D
//! methodology).
//!
//! Cores replay recorded traces. Simulation advances the core with the
//! smallest local cycle so shared-resource contention (LLC capacity, DRAM
//! banks and bus) is ordered consistently. A core that finishes its
//! measurement window keeps replaying its trace — still generating
//! contention — until every core has finished, matching the standard
//! multi-programmed methodology.

use crate::engine::TelSnap;
use crate::hierarchy::{CoreMemory, SharedBackend};
use crate::rob::RobModel;
use crate::stats::SimResult;
use crate::trace::CompactTrace;
use simtel::TelemetryHandle;

/// Per-core warmup/measure window (instructions).
pub use crate::engine::Window;

struct CoreState {
    rob: RobModel,
    instrs: u64,
    event_idx: usize,
    /// Trace events consumed (monotonic — `event_idx` wraps, this does not).
    consumed: u64,
    measuring: bool,
    measure_start_cycle: u64,
    finished: bool,
    result_cycles: u64,
    result_instrs: u64,
    tel: TelSnap,
}

/// The multi-core engine.
pub struct MulticoreEngine<C: CoreMemory> {
    mems: Vec<C>,
    backend: SharedBackend,
    window: Window,
    tel: TelemetryHandle,
}

impl<C: CoreMemory> MulticoreEngine<C> {
    pub fn new(mems: Vec<C>, backend: SharedBackend, window: Window) -> Self {
        assert!(!mems.is_empty());
        MulticoreEngine { mems, backend, window, tel: TelemetryHandle::disabled() }
    }

    /// Attach a telemetry sink: core `c` emits events and intervals through
    /// `tel.for_core(c)`, the shared backend through
    /// `tel.for_core(simtel::SHARED_CORE)`. Per-core interval snapshots
    /// carry the private-side counters; the shared LLC/DRAM deltas are
    /// machine-wide, so they stay zero in per-core intervals and appear
    /// only in the final per-run stats.
    pub fn attach_telemetry(&mut self, tel: TelemetryHandle) {
        for (i, mem) in self.mems.iter_mut().enumerate() {
            mem.attach_telemetry(tel.for_core(i as u32));
        }
        self.backend.attach_telemetry(tel.for_core(simtel::SHARED_CORE));
        self.tel = tel;
    }

    /// Replay one trace per core to completion; returns one result per core.
    ///
    /// Traces shorter than the window wrap around.
    pub fn run(self, traces: &[&CompactTrace], width: usize, rob_entries: usize) -> Vec<SimResult> {
        let offsets = vec![0u64; traces.len()];
        self.run_with_offsets(traces, &offsets, width, rob_entries)
    }

    /// Like [`MulticoreEngine::run`], but adds `offsets[c]` to every
    /// address of core `c`'s trace — how one recorded trace is replayed on
    /// several cores at once with disjoint address spaces (the paper's
    /// multi-programmed mixes).
    pub fn run_with_offsets(
        self,
        traces: &[&CompactTrace],
        offsets: &[u64],
        width: usize,
        rob_entries: usize,
    ) -> Vec<SimResult> {
        let mut run = self.start(offsets, width, rob_entries);
        run.run_to_completion(traces);
        run.finish()
    }

    /// Begin a steppable run: build per-core state and return the driver.
    /// Splitting construction from stepping lets the sweep layer advance
    /// the machine in bounded spans and snapshot between them.
    // simlint::allow(panic-path): `cores` is built with exactly `self.mems.len()` entries, so indexing mems by a cores index cannot fire
    pub fn start(self, offsets: &[u64], width: usize, rob_entries: usize) -> MulticoreRun<C> {
        assert_eq!(offsets.len(), self.mems.len());
        let every = self.tel.interval_instructions();
        let mut cores: Vec<CoreState> = (0..self.mems.len())
            .map(|_| CoreState {
                rob: RobModel::new(width, rob_entries),
                instrs: 0,
                event_idx: 0,
                consumed: 0,
                measuring: self.window.warmup == 0,
                measure_start_cycle: 0,
                finished: false,
                result_cycles: 0,
                result_instrs: 0,
                tel: TelSnap::default(),
            })
            .collect();
        if every != 0 && self.window.warmup == 0 {
            for (i, c) in cores.iter_mut().enumerate() {
                c.tel.arm(
                    every,
                    0,
                    self.mems[i].collect_core_stats(),
                    self.mems[i].telemetry_counters(),
                    c.rob.stalls,
                );
            }
        }
        MulticoreRun { engine: self, cores, offsets: offsets.to_vec() }
    }
}

/// An in-flight multi-core run: the engine plus per-core replay state,
/// advanced one scheduler step at a time so the sweep layer can take
/// crash-recovery snapshots between bounded spans.
pub struct MulticoreRun<C: CoreMemory> {
    engine: MulticoreEngine<C>,
    cores: Vec<CoreState>,
    offsets: Vec<u64>,
}

impl<C: CoreMemory> MulticoreRun<C> {
    /// Is every core past its measurement window?
    pub fn done(&self) -> bool {
        self.cores.iter().all(|c| c.finished)
    }

    /// Total scheduler steps consumed so far (one trace event per step),
    /// summed over cores. Deterministic, so it doubles as the snapshot
    /// position carried in the `SSTATEv1` header.
    pub fn steps(&self) -> u64 {
        self.cores.iter().map(|c| c.consumed).sum()
    }

    /// Advance the machine by at most `max_steps` scheduler steps (each
    /// step replays one trace event on the core with the smallest local
    /// cycle). Returns `true` while any core is still running.
    // simlint::allow(panic-path): per-core vectors are all sized to the core count fixed at construction, which is also the only divisor
    pub fn step_span(&mut self, traces: &[&CompactTrace], max_steps: u64) -> bool {
        assert_eq!(traces.len(), self.cores.len());
        assert!(traces.iter().all(|t| !t.is_empty()), "cannot replay an empty trace");
        let n = self.cores.len();
        let every = self.engine.tel.interval_instructions();
        let window = self.engine.window;
        let mut stepped = 0u64;
        // Advance the unfinished core with the smallest local cycle.
        while stepped < max_steps {
            let Some(cid) = (0..n)
                .filter(|&i| !self.cores[i].finished)
                .min_by_key(|&i| self.cores[i].rob.current_cycle())
            else {
                return false;
            };
            stepped += 1;
            let core = &mut self.cores[cid];
            let trace = traces[cid];
            let ev = trace.events[core.event_idx];
            core.event_idx = (core.event_idx + 1) % trace.events.len();
            core.consumed += 1;

            let before = core.instrs;
            if ev.is_mem() {
                let mut r = ev.as_mem_ref();
                r.addr += self.offsets[cid];
                let d = core.rob.dispatch_slot();
                let out = self.engine.mems[cid].access(&r, d, &mut self.engine.backend);
                let completion = if r.is_write { d + 1 } else { out.completion };
                core.rob.complete_at(completion);
                core.instrs += 1;
            } else {
                core.rob.bubbles(ev.addr);
                core.instrs += ev.addr;
            }

            // Warmup boundary: reset this core's private stats.
            let crossed_warmup =
                !core.measuring && before < window.warmup && core.instrs >= window.warmup;
            if crossed_warmup {
                core.measuring = true;
                core.measure_start_cycle = core.rob.current_cycle();
                self.engine.mems[cid].reset_stats();
                if every != 0 {
                    core.tel.arm(
                        every,
                        core.rob.current_cycle(),
                        self.engine.mems[cid].collect_core_stats(),
                        self.engine.mems[cid].telemetry_counters(),
                        core.rob.stalls,
                    );
                }
            }

            // Interval snapshot (same cadence and monotonicity rules as the
            // single-core engine; at most one per event).
            if core.tel.next_instrs != 0 && core.measuring && !core.finished {
                let measured = core.instrs.saturating_sub(window.warmup);
                let now = core.rob.current_cycle();
                if measured >= core.tel.next_instrs && now > core.tel.last_cycle {
                    let interval = core.tel.build(
                        cid as u32,
                        now,
                        measured,
                        self.engine.mems[cid].collect_core_stats(),
                        self.engine.mems[cid].telemetry_counters(),
                        core.rob.stalls,
                    );
                    self.engine.tel.interval(&interval);
                    core.tel.next_instrs = (measured / every + 1) * every;
                }
            }

            // Measurement complete for this core?
            if !core.finished && core.instrs >= window.total() {
                core.finished = true;
                let end = core.rob.drain();
                core.result_cycles = end.saturating_sub(core.measure_start_cycle).max(1);
                core.result_instrs = core.instrs - window.warmup.min(core.instrs);
                // Tail flush so this core's interval sums cover its window.
                if core.tel.next_instrs != 0 {
                    let measured = core.result_instrs;
                    if measured > core.tel.prev_instrs {
                        let end_cycle = end.max(core.tel.last_cycle + 1);
                        let interval = core.tel.build(
                            cid as u32,
                            end_cycle,
                            measured,
                            self.engine.mems[cid].collect_core_stats(),
                            self.engine.mems[cid].telemetry_counters(),
                            core.rob.stalls,
                        );
                        self.engine.tel.interval(&interval);
                    }
                }
            }

            // Once the last core crosses warmup, reset the shared backend so
            // LLC/DRAM counters cover only the measured region.
            if crossed_warmup && self.cores.iter().all(|c| c.measuring) {
                self.engine.backend.reset_stats();
            }
        }
        !self.done()
    }

    /// Replay until every core finishes its window.
    pub fn run_to_completion(&mut self, traces: &[&CompactTrace]) {
        while self.step_span(traces, u64::MAX) {}
    }

    /// Per-core results. Each carries the shared LLC/DRAM counters (they
    /// describe the whole machine, so every core reports the same backend
    /// numbers).
    pub fn finish(self) -> Vec<SimResult> {
        self.cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut stats = self.engine.mems[i].collect_core_stats();
                stats.llc = *self.engine.backend.llc.stats();
                stats.dram = self.engine.backend.dram.stats;
                SimResult { instructions: c.result_instrs, cycles: c.result_cycles, stats }
            })
            .collect()
    }

    /// Serialize the full machine: every core's replay cursor + ROB +
    /// private memory side, then the shared backend. Telemetry interval
    /// state is deliberately not stored (pure observer; intervals emitted
    /// after a restore cover only post-restore execution).
    pub fn save_state(&self, w: &mut simstate::StateSink) {
        w.tag(b"MC__");
        w.put_usize(self.cores.len());
        for (i, c) in self.cores.iter().enumerate() {
            c.rob.save_state(w);
            w.put_u64(c.instrs);
            w.put_usize(c.event_idx);
            w.put_u64(c.consumed);
            w.put_bool(c.measuring);
            w.put_u64(c.measure_start_cycle);
            w.put_bool(c.finished);
            w.put_u64(c.result_cycles);
            w.put_u64(c.result_instrs);
            w.put_u64(self.offsets[i]);
            self.engine.mems[i].save_state(w);
        }
        self.engine.backend.save_state(w);
    }

    /// Restore state saved by [`Self::save_state`] into a run started with
    /// the same configuration, core count, and window.
    pub fn load_state(
        &mut self,
        r: &mut simstate::StateSource,
    ) -> Result<(), simstate::StateError> {
        r.expect_tag(b"MC__")?;
        let n = r.get_usize()?;
        if n != self.cores.len() {
            return Err(simstate::StateError::ShapeMismatch {
                what: "core count",
                expected: self.cores.len() as u64,
                found: n as u64,
            });
        }
        for (i, c) in self.cores.iter_mut().enumerate() {
            c.rob.load_state(r)?;
            c.instrs = r.get_u64()?;
            c.event_idx = r.get_usize()?;
            c.consumed = r.get_u64()?;
            c.measuring = r.get_bool()?;
            c.measure_start_cycle = r.get_u64()?;
            c.finished = r.get_bool()?;
            c.result_cycles = r.get_u64()?;
            c.result_instrs = r.get_u64()?;
            let offset = r.get_u64()?;
            if let Some(slot) = self.offsets.get_mut(i) {
                *slot = offset;
            }
            c.tel = TelSnap::default();
            self.engine.mems[i].load_state(r)?;
        }
        self.engine.backend.load_state(r)
    }

    /// One-call snapshot payload for an `SSTATEv1` container.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = simstate::StateSink::new();
        self.save_state(&mut w);
        w.into_bytes()
    }

    /// Restore from a payload produced by [`Self::snapshot`], requiring the
    /// payload to be fully consumed.
    pub fn restore(&mut self, payload: &[u8]) -> Result<(), simstate::StateError> {
        let mut r = simstate::StateSource::new(payload);
        self.load_state(&mut r)?;
        r.expect_end()
    }
}

/// Weighted speedup of a mix: sum over threads of
/// `IPC_shared / IPC_single`, as defined in Section IV-D.
pub fn weighted_ipc(shared: &[SimResult], single: &[SimResult]) -> f64 {
    assert_eq!(shared.len(), single.len());
    shared
        .iter()
        .zip(single)
        .map(|(sh, si)| {
            let denom = si.ipc();
            if denom <= 0.0 {
                0.0
            } else {
                sh.ipc() / denom
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrefetcherKind, SystemConfig};
    use crate::hierarchy::CoreSide;
    use crate::trace::{RecordingTracer, Tracer};

    fn make_trace(seed: u64, instrs: u64, footprint_blocks: u64) -> CompactTrace {
        let mut rec = RecordingTracer::new(instrs);
        let mut x = seed;
        while !rec.done() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rec.load(1, 0, (x % footprint_blocks) * 64);
            rec.bubble(2);
        }
        rec.finish()
    }

    fn cfg() -> SystemConfig {
        let mut cfg = SystemConfig::baseline(4);
        cfg.l1d.prefetcher = PrefetcherKind::None;
        cfg.l2c.prefetcher = PrefetcherKind::None;
        cfg
    }

    #[test]
    fn four_cores_all_produce_results() {
        let cfg = cfg();
        let traces: Vec<CompactTrace> =
            (0..4).map(|i| make_trace(i + 1, 20_000, 100_000)).collect();
        let refs: Vec<&CompactTrace> = traces.iter().collect();
        let mems: Vec<CoreSide> = (0..4).map(|_| CoreSide::new(&cfg)).collect();
        let engine =
            MulticoreEngine::new(mems, SharedBackend::new(&cfg), Window::new(2000, 18_000));
        let results = engine.run(&refs, 4, 224);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(r.cycles > 0);
            assert!(r.instructions > 0);
            assert!(r.ipc() > 0.0);
        }
    }

    #[test]
    fn shared_run_is_slower_than_isolated() {
        let cfg = cfg();
        // DRAM-heavy trace: contention must hurt.
        let traces: Vec<CompactTrace> =
            (0..4).map(|i| make_trace(i + 77, 30_000, 10_000_000)).collect();
        let refs: Vec<&CompactTrace> = traces.iter().collect();

        let mems: Vec<CoreSide> = (0..4).map(|_| CoreSide::new(&cfg)).collect();
        let shared = MulticoreEngine::new(mems, SharedBackend::new(&cfg), Window::new(0, 30_000))
            .run(&refs, 4, 224);

        // Isolated: each trace alone on the same machine.
        let mut singles = Vec::new();
        for t in &traces {
            let mems = vec![CoreSide::new(&cfg)];
            let r = MulticoreEngine::new(mems, SharedBackend::new(&cfg), Window::new(0, 30_000))
                .run(&[t], 4, 224);
            singles.push(r.into_iter().next().unwrap());
        }

        let ws = weighted_ipc(&shared, &singles);
        assert!(ws <= 4.0 + 1e-9, "weighted IPC cannot exceed core count, got {ws}");
        assert!(ws > 0.5, "weighted IPC suspiciously low: {ws}");
        for (sh, si) in shared.iter().zip(&singles) {
            assert!(sh.ipc() <= si.ipc() * 1.05, "shared {} vs single {}", sh.ipc(), si.ipc());
        }
    }

    #[test]
    fn results_carry_shared_backend_stats() {
        let cfg = cfg();
        // Footprint far beyond the private caches so the LLC and DRAM see
        // real traffic during measurement.
        let traces: Vec<CompactTrace> =
            (0..2).map(|i| make_trace(i + 9, 20_000, 4_000_000)).collect();
        let refs: Vec<&CompactTrace> = traces.iter().collect();
        let mems: Vec<CoreSide> = (0..2).map(|_| CoreSide::new(&cfg)).collect();
        let results =
            MulticoreEngine::new(mems, SharedBackend::new(&cfg), Window::new(2000, 18_000))
                .run(&refs, 4, 224);
        for (i, r) in results.iter().enumerate() {
            assert!(r.stats.llc.accesses > 0, "core {i} lost shared LLC stats");
            assert!(r.stats.dram.reads > 0, "core {i} lost shared DRAM stats");
        }
        // The backend is shared: every core reports the same machine-wide
        // counters.
        assert_eq!(results[0].stats.llc.accesses, results[1].stats.llc.accesses);
        assert_eq!(results[0].stats.dram.reads, results[1].stats.dram.reads);
        // Backend counters were reset at the warmup boundary, so they
        // cannot exceed what the private caches let through plus writebacks.
        let total_l2_misses: u64 = results.iter().map(|r| r.stats.l2c.misses).sum();
        assert!(
            results[0].stats.llc.accesses <= total_l2_misses * 2,
            "LLC accesses {} look unreset (l2 misses {})",
            results[0].stats.llc.accesses,
            total_l2_misses
        );
    }

    #[test]
    fn short_trace_wraps_around() {
        let cfg = cfg();
        let trace = make_trace(5, 1000, 1000);
        let mems = vec![CoreSide::new(&cfg)];
        let results = MulticoreEngine::new(mems, SharedBackend::new(&cfg), Window::new(0, 5000))
            .run(&[&trace], 4, 224);
        assert!(results[0].instructions >= 5000);
    }

    #[test]
    fn per_core_intervals_are_monotone_and_reconcile() {
        let cfg = cfg();
        let traces: Vec<CompactTrace> =
            (0..2).map(|i| make_trace(i + 3, 20_000, 2_000_000)).collect();
        let refs: Vec<&CompactTrace> = traces.iter().collect();

        let run = |tel: Option<TelemetryHandle>| {
            let mems: Vec<CoreSide> = (0..2).map(|_| CoreSide::new(&cfg)).collect();
            let mut eng =
                MulticoreEngine::new(mems, SharedBackend::new(&cfg), Window::new(2000, 18_000));
            if let Some(t) = tel {
                eng.attach_telemetry(t);
            }
            eng.run(&refs, 4, 224)
        };

        let plain = run(None);
        let tcfg = simtel::TelemetryConfig { interval_instructions: 2000, ..Default::default() };
        let tel = TelemetryHandle::collector(&tcfg);
        let traced = run(Some(tel.clone()));
        assert_eq!(plain, traced, "telemetry must not perturb the simulation");

        let out = tel.take_output().unwrap();
        for core in 0..2u32 {
            let ivs: Vec<_> = out.intervals.iter().filter(|iv| iv.core == core).collect();
            assert!(ivs.len() >= 2, "core {core}: {} intervals", ivs.len());
            for (i, iv) in ivs.iter().enumerate() {
                assert_eq!(iv.index, i as u64);
                assert!(iv.end_cycle > iv.start_cycle);
                if i > 0 {
                    assert_eq!(iv.start_cycle, ivs[i - 1].end_cycle);
                }
            }
            let instrs: u64 = ivs.iter().map(|iv| iv.instructions).sum();
            assert_eq!(instrs, traced[core as usize].instructions);
            let l1d: u64 = ivs.iter().map(|iv| iv.l1d.accesses).sum();
            assert_eq!(l1d, traced[core as usize].stats.l1d.accesses);
        }
        // Shared-backend events carry the SHARED_CORE stamp.
        assert!(out.events.iter().all(|ev| ev.core < 2 || ev.core == simtel::SHARED_CORE));
    }

    #[test]
    fn multicore_snapshot_restore_then_run_is_bit_identical() {
        // Prefetchers on: snapshot the richest state the hierarchy holds.
        let cfg = SystemConfig::baseline(4);
        let traces: Vec<CompactTrace> =
            (0..4).map(|i| make_trace(i + 21, 20_000, 3_000_000)).collect();
        let refs: Vec<&CompactTrace> = traces.iter().collect();
        let offsets = [0u64, 1 << 32, 2 << 32, 3 << 32];
        let window = Window::new(2000, 18_000);
        let build = || {
            let mems: Vec<CoreSide> = (0..4).map(|_| CoreSide::new(&cfg)).collect();
            MulticoreEngine::new(mems, SharedBackend::new(&cfg), window)
        };

        let mut straight = build().start(&offsets, 4, 224);
        straight.run_to_completion(&refs);
        let want = straight.finish();

        // Split mid-warmup and mid-measurement.
        for split in [3_000u64, 40_000] {
            let mut first = build().start(&offsets, 4, 224);
            assert!(first.step_span(&refs, split), "machine still running at step {split}");
            assert_eq!(first.steps(), split);
            let payload = first.snapshot();

            let mut resumed = build().start(&offsets, 4, 224);
            resumed.restore(&payload).unwrap();
            assert_eq!(resumed.steps(), split);
            resumed.run_to_completion(&refs);
            assert_eq!(resumed.finish(), want, "diverged after restore at step {split}");
        }
    }

    #[test]
    fn multicore_restore_rejects_wrong_core_count() {
        let cfg = cfg();
        let trace = make_trace(5, 2000, 10_000);
        let mems: Vec<CoreSide> = (0..2).map(|_| CoreSide::new(&cfg)).collect();
        let mut run = MulticoreEngine::new(mems, SharedBackend::new(&cfg), Window::new(0, 5000))
            .start(&[0, 0], 4, 224);
        run.step_span(&[&trace, &trace], 100);
        let payload = run.snapshot();

        let mems = vec![CoreSide::new(&cfg)];
        let mut other = MulticoreEngine::new(mems, SharedBackend::new(&cfg), Window::new(0, 5000))
            .start(&[0], 4, 224);
        assert!(matches!(
            other.restore(&payload),
            Err(simstate::StateError::ShapeMismatch { what: "core count", .. })
        ));
    }

    #[test]
    fn weighted_ipc_of_identical_runs_is_core_count() {
        let r = SimResult { instructions: 1000, cycles: 500, ..Default::default() };
        let shared = vec![r.clone(), r.clone()];
        let single = vec![r.clone(), r.clone()];
        assert!((weighted_ipc(&shared, &single) - 2.0).abs() < 1e-12);
    }
}
