//! Cache replacement policies.
//!
//! Policies own their per-line metadata and are driven by the cache through
//! three hooks: `on_hit`, `on_fill`, and `victim`.

mod lru;
mod srrip;
mod topt;

pub use lru::Lru;
pub use srrip::Srrip;
pub use topt::{TOpt, TOPT_DEFAULT_DISTANCE};

use crate::config::ReplacementKind;

/// Per-access context handed to replacement hooks.
#[derive(Debug, Clone, Copy)]
pub struct ReplCtx {
    /// Oracle next-use position for this block (`u32::MAX` = no hint).
    pub next_use: u32,
    /// Current global access position at this cache.
    pub pos: u32,
    /// Data-structure id of the access.
    pub sid: u8,
}

impl ReplCtx {
    pub const NONE: ReplCtx = ReplCtx { next_use: u32::MAX, pos: 0, sid: 0 };
}

/// Replacement policy interface.
pub trait ReplacementPolicy: Send {
    /// A demand access hit `way` of `set`.
    fn on_hit(&mut self, set: usize, way: usize, ctx: ReplCtx);
    /// A line was filled into `way` of `set`.
    fn on_fill(&mut self, set: usize, way: usize, ctx: ReplCtx);
    /// Choose a victim way in `set` (all ways are valid when called).
    fn victim(&mut self, set: usize) -> usize;
}

/// Construct a boxed policy for the given kind and geometry.
pub fn make_policy(kind: ReplacementKind, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
    match kind {
        ReplacementKind::Lru => Box::new(Lru::new(sets, ways)),
        ReplacementKind::Srrip => Box::new(Srrip::new(sets, ways)),
        ReplacementKind::TOpt => Box::new(TOpt::new(sets, ways)),
    }
}
