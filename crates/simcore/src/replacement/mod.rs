//! Cache replacement policies.
//!
//! Policies own their per-line metadata and are driven by the cache through
//! three hooks: `on_hit`, `on_fill`, and `victim`.

mod lru;
mod srrip;
mod topt;

pub use lru::Lru;
pub use srrip::Srrip;
pub use topt::{TOpt, TOPT_DEFAULT_DISTANCE};

use crate::config::ReplacementKind;

/// Per-access context handed to replacement hooks.
#[derive(Debug, Clone, Copy)]
pub struct ReplCtx {
    /// Oracle next-use position for this block (`u32::MAX` = no hint).
    pub next_use: u32,
    /// Current global access position at this cache. 64-bit so the
    /// ordering never wraps: a u32 counter silently corrupts age-based
    /// victim selection once a long run passes 2^32 accesses.
    pub pos: u64,
    /// Data-structure id of the access.
    pub sid: u8,
}

impl ReplCtx {
    pub const NONE: ReplCtx = ReplCtx { next_use: u32::MAX, pos: 0, sid: 0 };
}

/// Replacement policy interface.
pub trait ReplacementPolicy: Send {
    /// A demand access hit `way` of `set`.
    fn on_hit(&mut self, set: usize, way: usize, ctx: ReplCtx);
    /// A line was filled into `way` of `set`.
    fn on_fill(&mut self, set: usize, way: usize, ctx: ReplCtx);
    /// Choose a victim way in `set` (all ways are valid when called).
    fn victim(&mut self, set: usize) -> usize;
}

/// Construct a boxed policy for the given kind and geometry.
pub fn make_policy(kind: ReplacementKind, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
    match kind {
        ReplacementKind::Lru => Box::new(Lru::new(sets, ways)),
        ReplacementKind::Srrip => Box::new(Srrip::new(sets, ways)),
        ReplacementKind::TOpt => Box::new(TOpt::new(sets, ways)),
    }
}

/// Enum-dispatched replacement state for the cache hot path.
///
/// Semantically identical to the boxed [`ReplacementPolicy`] objects (the
/// golden fixtures pin this bit-for-bit), but with static dispatch and flat
/// arrays so `on_hit`/`on_fill`/`victim` inline into the cache's access
/// loop. The trait objects remain for composable users (TLBs, tests).
#[derive(Debug)]
pub enum ReplState {
    Lru { ways: usize, stamps: Vec<u64>, clock: u64 },
    Srrip { ways: usize, rrpv: Vec<u8> },
    TOpt { ways: usize, next_use: Vec<u64>, stamps: Vec<u64>, clock: u64 },
}

/// Maximum (eviction-candidate) re-reference prediction value, mirrored
/// from the boxed SRRIP policy.
const SRRIP_MAX_RRPV: u8 = 3;

impl ReplState {
    pub fn new(kind: ReplacementKind, sets: usize, ways: usize) -> Self {
        match kind {
            ReplacementKind::Lru => ReplState::Lru { ways, stamps: vec![0; sets * ways], clock: 0 },
            ReplacementKind::Srrip => {
                ReplState::Srrip { ways, rrpv: vec![SRRIP_MAX_RRPV; sets * ways] }
            }
            ReplacementKind::TOpt => ReplState::TOpt {
                ways,
                next_use: vec![u64::MAX; sets * ways],
                stamps: vec![0; sets * ways],
                clock: 0,
            },
        }
    }

    #[inline]
    pub fn on_hit(&mut self, set: usize, way: usize, ctx: ReplCtx) {
        match self {
            ReplState::Lru { ways, stamps, clock } => {
                *clock += 1;
                stamps[set * *ways + way] = *clock;
            }
            ReplState::Srrip { ways, rrpv } => rrpv[set * *ways + way] = 0,
            ReplState::TOpt { ways, next_use, stamps, clock } => {
                let idx = set * *ways + way;
                next_use[idx] = topt::predicted(ctx);
                *clock += 1;
                stamps[idx] = *clock;
            }
        }
    }

    #[inline]
    pub fn on_fill(&mut self, set: usize, way: usize, ctx: ReplCtx) {
        match self {
            ReplState::Lru { ways, stamps, clock } => {
                *clock += 1;
                stamps[set * *ways + way] = *clock;
            }
            ReplState::Srrip { ways, rrpv } => rrpv[set * *ways + way] = SRRIP_MAX_RRPV - 1,
            ReplState::TOpt { .. } => self.on_hit(set, way, ctx),
        }
    }

    /// Serialize the policy state (variant discriminant + metadata arrays).
    pub fn save_state(&self, w: &mut simstate::StateSink) {
        w.tag(b"REPL");
        match self {
            ReplState::Lru { stamps, clock, .. } => {
                w.put_u8(0);
                w.put_u64s(stamps);
                w.put_u64(*clock);
            }
            ReplState::Srrip { rrpv, .. } => {
                w.put_u8(1);
                w.put_bytes(rrpv);
            }
            ReplState::TOpt { next_use, stamps, clock, .. } => {
                w.put_u8(2);
                w.put_u64s(next_use);
                w.put_u64s(stamps);
                w.put_u64(*clock);
            }
        }
    }

    /// Restore policy state saved by [`Self::save_state`]. The live variant
    /// and geometry must match the stored one (the policy kind is part of
    /// the system configuration, so a mismatch means a stale snapshot).
    pub fn load_state(
        &mut self,
        r: &mut simstate::StateSource,
    ) -> Result<(), simstate::StateError> {
        r.expect_tag(b"REPL")?;
        let disc = r.get_u8()?;
        let expected = match self {
            ReplState::Lru { .. } => 0,
            ReplState::Srrip { .. } => 1,
            ReplState::TOpt { .. } => 2,
        };
        if disc != expected {
            return Err(simstate::StateError::BadValue {
                what: "replacement policy discriminant",
                found: u64::from(disc),
            });
        }
        match self {
            ReplState::Lru { stamps, clock, .. } => {
                r.read_u64s_into("lru stamps", stamps)?;
                *clock = r.get_u64()?;
            }
            ReplState::Srrip { rrpv, .. } => {
                r.read_bytes_into("srrip rrpv", rrpv)?;
            }
            ReplState::TOpt { next_use, stamps, clock, .. } => {
                r.read_u64s_into("topt next_use", next_use)?;
                r.read_u64s_into("topt stamps", stamps)?;
                *clock = r.get_u64()?;
            }
        }
        Ok(())
    }

    #[inline]
    pub fn victim(&mut self, set: usize) -> usize {
        match self {
            ReplState::Lru { ways, stamps, .. } => {
                let base = set * *ways;
                let mut victim = 0;
                let mut oldest = u64::MAX;
                for (w, &s) in stamps[base..base + *ways].iter().enumerate() {
                    if s < oldest {
                        oldest = s;
                        victim = w;
                    }
                }
                victim
            }
            ReplState::Srrip { ways, rrpv } => {
                let set_rrpv = &mut rrpv[set * *ways..(set + 1) * *ways];
                loop {
                    if let Some(w) = set_rrpv.iter().position(|&r| r == SRRIP_MAX_RRPV) {
                        return w;
                    }
                    for r in set_rrpv.iter_mut() {
                        *r += 1;
                    }
                }
            }
            ReplState::TOpt { ways, next_use, stamps, .. } => {
                let base = set * *ways;
                let mut victim = 0;
                let mut farthest = 0u64;
                let mut oldest = u64::MAX;
                for w in 0..*ways {
                    let nu = next_use[base + w];
                    let st = stamps[base + w];
                    // Prefer the farthest predicted next use; break ties LRU.
                    if nu > farthest || (nu == farthest && st < oldest) {
                        farthest = nu;
                        oldest = st;
                        victim = w;
                    }
                }
                victim
            }
        }
    }
}
