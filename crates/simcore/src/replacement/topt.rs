//! Transpose-based OPT (T-OPT) replacement, the paper's state-of-the-art
//! comparison point (Balaji et al., HPCA 2021).
//!
//! T-OPT approximates Belady's MIN at the LLC for graph analytics by using
//! the *transpose* of the graph to compute, for each irregularly-accessed
//! vertex-property line, the position of its next reference. In this
//! reproduction the instrumented kernels carry that next-reference oracle in
//! `MemRef::next_use` (computed from transpose cursors, exactly the
//! information the transpose gives the hardware in the original proposal).
//! Lines without a hint (non-property data, frontier-driven kernels) are
//! assumed to be re-referenced at a fixed default distance, mirroring
//! P-OPT's handling of non-graph data.

use super::{ReplCtx, ReplacementPolicy};

/// Assumed re-reference distance for unhinted lines of non-streaming data
/// (frontier queues, scalars).
pub const TOPT_DEFAULT_DISTANCE: u32 = 1 << 14;

/// Assumed re-reference distance for unhinted *streaming* lines (the OA
/// and NA arrays): their true next use is the next full sweep, far beyond
/// any property line's — T-OPT knows the graph structures and treats them
/// as streaming, which is what lets it protect property data.
pub const TOPT_STREAM_DISTANCE: u32 = 1 << 26;

/// Structure ids the policy treats as streaming (see `gpkernels::sid`:
/// OA = 1, NA = 2, WEIGHTS = 7 share the NA's sweep order).
const STREAMING_SIDS: [u8; 3] = [1, 2, 7];

/// Sentinel: predicted never re-referenced.
const NEVER: u64 = u64::MAX;

/// Predicted absolute next-use position for an access, from the oracle hint
/// when present and the per-structure assumed distance otherwise. Shared
/// with the enum-dispatched `ReplState` in the parent module so both paths
/// stay bit-identical.
#[inline]
pub(super) fn predicted(ctx: ReplCtx) -> u64 {
    if ctx.next_use != u32::MAX {
        return u64::from(ctx.next_use);
    }
    let distance = if STREAMING_SIDS.contains(&ctx.sid) {
        TOPT_STREAM_DISTANCE
    } else {
        TOPT_DEFAULT_DISTANCE
    };
    ctx.pos + u64::from(distance)
}

/// T-OPT: evict the line whose predicted next reference is farthest away.
#[derive(Debug)]
pub struct TOpt {
    ways: usize,
    /// Predicted absolute next-use position per line.
    next_use: Vec<u64>,
    /// LRU stamps used to break ties among equally-far lines.
    stamps: Vec<u64>,
    clock: u64,
}

impl TOpt {
    pub fn new(sets: usize, ways: usize) -> Self {
        TOpt { ways, next_use: vec![NEVER; sets * ways], stamps: vec![0; sets * ways], clock: 0 }
    }

    fn update(&mut self, set: usize, way: usize, ctx: ReplCtx) {
        let idx = set * self.ways + way;
        self.next_use[idx] = predicted(ctx);
        self.clock += 1;
        self.stamps[idx] = self.clock;
    }
}

impl ReplacementPolicy for TOpt {
    fn on_hit(&mut self, set: usize, way: usize, ctx: ReplCtx) {
        self.update(set, way, ctx);
    }

    fn on_fill(&mut self, set: usize, way: usize, ctx: ReplCtx) {
        self.update(set, way, ctx);
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        let mut victim = 0;
        let mut farthest = 0u64;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            let nu = self.next_use[base + w];
            let st = self.stamps[base + w];
            // Prefer the farthest predicted next use; break ties LRU.
            if nu > farthest || (nu == farthest && st < oldest) {
                farthest = nu;
                oldest = st;
                victim = w;
            }
        }
        victim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(next_use: u32, pos: u64) -> ReplCtx {
        ReplCtx { next_use, pos, sid: 0 }
    }

    #[test]
    fn evicts_farthest_next_use() {
        let mut p = TOpt::new(1, 4);
        p.on_fill(0, 0, ctx(100, 0));
        p.on_fill(0, 1, ctx(5000, 0));
        p.on_fill(0, 2, ctx(10, 0));
        p.on_fill(0, 3, ctx(900, 0));
        assert_eq!(p.victim(0), 1);
    }

    #[test]
    fn unhinted_lines_use_default_distance() {
        let mut p = TOpt::new(1, 2);
        // Hinted line re-referenced very soon; unhinted assumed far.
        p.on_fill(0, 0, ctx(10, 0));
        p.on_fill(0, 1, ctx(u32::MAX, 0));
        assert_eq!(p.victim(0), 1);
        // Hinted line re-referenced beyond the default distance loses.
        let mut p = TOpt::new(1, 2);
        p.on_fill(0, 0, ctx(TOPT_DEFAULT_DISTANCE * 3, 0));
        p.on_fill(0, 1, ctx(u32::MAX, 0));
        assert_eq!(p.victim(0), 0);
    }

    #[test]
    fn hit_refreshes_prediction() {
        let mut p = TOpt::new(1, 2);
        p.on_fill(0, 0, ctx(1_000_000, 0));
        p.on_fill(0, 1, ctx(5000, 0));
        assert_eq!(p.victim(0), 0);
        // Way 0 is referenced and its next use is now imminent.
        p.on_hit(0, 0, ctx(600, 550));
        assert_eq!(p.victim(0), 1);
    }

    #[test]
    fn ties_break_lru() {
        let mut p = TOpt::new(1, 2);
        p.on_fill(0, 0, ctx(100, 0));
        p.on_fill(0, 1, ctx(100, 0));
        // Way 0 was filled first (older stamp) -> victim.
        assert_eq!(p.victim(0), 0);
    }
}
