//! Static RRIP (Re-Reference Interval Prediction) replacement.
//!
//! Not part of the paper's Table I configuration; provided as an extension
//! point for the ablation benches (the paper's related-work section notes
//! RRIP-class policies struggle on graph workloads, which the ablation
//! bench `ablation_replacement` demonstrates).

use super::{ReplCtx, ReplacementPolicy};

const MAX_RRPV: u8 = 3; // 2-bit RRPV

/// SRRIP with hit-priority promotion.
#[derive(Debug)]
pub struct Srrip {
    ways: usize,
    rrpv: Vec<u8>,
}

impl Srrip {
    pub fn new(sets: usize, ways: usize) -> Self {
        Srrip { ways, rrpv: vec![MAX_RRPV; sets * ways] }
    }
}

impl ReplacementPolicy for Srrip {
    fn on_hit(&mut self, set: usize, way: usize, _ctx: ReplCtx) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: ReplCtx) {
        // Insert with "long" re-reference interval prediction.
        self.rrpv[set * self.ways + way] = MAX_RRPV - 1;
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            for w in 0..self.ways {
                if self.rrpv[base + w] == MAX_RRPV {
                    return w;
                }
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_inserted_long_are_early_victims() {
        let mut p = Srrip::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, ReplCtx::NONE);
        }
        p.on_hit(0, 2, ReplCtx::NONE);
        // All non-hit ways age to MAX together; way 0 is found first.
        let v = p.victim(0);
        assert_ne!(v, 2);
    }

    #[test]
    fn victim_terminates_and_ages() {
        let mut p = Srrip::new(1, 2);
        p.on_hit(0, 0, ReplCtx::NONE);
        p.on_hit(0, 1, ReplCtx::NONE);
        // Both RRPV=0: aging must occur until one reaches MAX.
        let v = p.victim(0);
        assert!(v < 2);
    }
}
