//! Least-recently-used replacement (Table I policy for every cache level,
//! the LP prediction table, and the SDCDir).

use super::{ReplCtx, ReplacementPolicy};

/// Timestamp-based true LRU.
#[derive(Debug)]
pub struct Lru {
    ways: usize,
    stamps: Vec<u64>,
    clock: u64,
}

impl Lru {
    pub fn new(sets: usize, ways: usize) -> Self {
        Lru { ways, stamps: vec![0; sets * ways], clock: 0 }
    }

    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }
}

impl ReplacementPolicy for Lru {
    fn on_hit(&mut self, set: usize, way: usize, _ctx: ReplCtx) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: ReplCtx) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            let s = self.stamps[base + w];
            if s < oldest {
                oldest = s;
                victim = w;
            }
        }
        victim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recent() {
        let mut lru = Lru::new(1, 4);
        for w in 0..4 {
            lru.on_fill(0, w, ReplCtx::NONE);
        }
        lru.on_hit(0, 0, ReplCtx::NONE); // way 0 becomes MRU
        assert_eq!(lru.victim(0), 1);
        lru.on_hit(0, 1, ReplCtx::NONE);
        assert_eq!(lru.victim(0), 2);
    }

    #[test]
    fn mru_never_victim() {
        let mut lru = Lru::new(2, 8);
        for w in 0..8 {
            lru.on_fill(1, w, ReplCtx::NONE);
        }
        for hit in [3usize, 7, 0, 5] {
            lru.on_hit(1, hit, ReplCtx::NONE);
            assert_ne!(lru.victim(1), hit);
        }
    }

    #[test]
    fn sets_are_independent() {
        let mut lru = Lru::new(2, 2);
        lru.on_fill(0, 0, ReplCtx::NONE);
        lru.on_fill(0, 1, ReplCtx::NONE);
        lru.on_fill(1, 1, ReplCtx::NONE);
        lru.on_fill(1, 0, ReplCtx::NONE);
        assert_eq!(lru.victim(0), 0);
        assert_eq!(lru.victim(1), 1);
    }
}
