//! Scoreboard model of the out-of-order core (Table I: 4-wide, 224-entry
//! ROB, 6-stage pipeline).
//!
//! Instructions dispatch in program order at up to `width` per cycle and
//! retire in order at up to `width` per cycle. A load's completion cycle
//! comes from the memory system; independent loads overlap freely until the
//! ROB fills behind a long-latency miss — the mechanism that makes DRAM
//! latency dominate graph-processing IPC (the paper's Finding 1/2 regime).

use simtel::{StallBuckets, StallTag};
use std::collections::VecDeque;

/// The core timing model.
#[derive(Debug)]
pub struct RobModel {
    capacity: usize,
    width: usize,
    /// Completion cycle and stall tag of each in-flight instruction, in
    /// program order. The tag names what the instruction was waiting on,
    /// so a dispatch stall behind it can be attributed to a cause.
    rob: VecDeque<(u64, StallTag)>,
    /// Cycle at which the next dispatch slot opens.
    cycle: u64,
    dispatched_this_cycle: usize,
    last_retire_cycle: u64,
    retired_in_cycle: usize,
    /// Total retired instructions.
    pub retired: u64,
    /// Cumulative dispatch-stall attribution (telemetry; maintained
    /// whether or not a sink is attached — it is a handful of adds).
    pub stalls: StallBuckets,
}

impl RobModel {
    pub fn new(width: usize, capacity: usize) -> Self {
        assert!(width > 0 && capacity > 0);
        RobModel {
            capacity,
            width,
            rob: VecDeque::with_capacity(capacity),
            cycle: 0,
            dispatched_this_cycle: 0,
            last_retire_cycle: 0,
            retired_in_cycle: 0,
            retired: 0,
            stalls: StallBuckets::default(),
        }
    }

    /// Retire the oldest instruction, honoring in-order retirement and the
    /// retire-width limit; returns the cycle it left the ROB and what it
    /// was waiting on.
    fn retire_head(&mut self) -> (u64, StallTag) {
        let (completion, tag) = self
            .rob
            .pop_front()
            // simlint::allow(unwrap): invariant — both callers check !rob.is_empty() first
            .expect("invariant: retire_head is only called on a non-empty ROB");
        let earliest = completion.max(self.last_retire_cycle);
        if earliest > self.last_retire_cycle {
            self.last_retire_cycle = earliest;
            self.retired_in_cycle = 1;
        } else if self.retired_in_cycle < self.width {
            self.retired_in_cycle += 1;
        } else {
            self.last_retire_cycle += 1;
            self.retired_in_cycle = 1;
        }
        self.retired += 1;
        (self.last_retire_cycle, tag)
    }

    /// Claim a dispatch slot for the next instruction in program order and
    /// return its dispatch cycle. The caller must follow up with
    /// [`RobModel::complete_at`].
    pub fn dispatch_slot(&mut self) -> u64 {
        if self.dispatched_this_cycle >= self.width {
            self.cycle += 1;
            self.dispatched_this_cycle = 0;
        }
        // A full ROB stalls dispatch until the head retires; the wait is
        // charged to whatever the head was blocked on.
        while self.rob.len() >= self.capacity {
            let (freed_at, tag) = self.retire_head();
            if freed_at > self.cycle {
                self.stalls.charge(tag, freed_at - self.cycle);
                self.cycle = freed_at;
                self.dispatched_this_cycle = 0;
            }
        }
        self.dispatched_this_cycle += 1;
        self.cycle
    }

    /// Record that the instruction dispatched last completes at `completion`.
    pub fn complete_at(&mut self, completion: u64) {
        self.complete_tagged(completion, StallTag::Core);
    }

    /// [`RobModel::complete_at`] with an explicit stall tag naming what
    /// the instruction waits on (memory level, MSHR pressure).
    pub fn complete_tagged(&mut self, completion: u64, tag: StallTag) {
        debug_assert!(completion > self.cycle);
        self.rob.push_back((completion.max(self.cycle + 1), tag));
    }

    /// Dispatch one single-cycle (non-memory) instruction.
    pub fn bubble(&mut self) {
        let d = self.dispatch_slot();
        self.rob.push_back((d + 1, StallTag::Core));
    }

    /// Dispatch `n` single-cycle instructions.
    pub fn bubbles(&mut self, n: u64) {
        if self.rob.is_empty() && n > 2 * self.capacity as u64 {
            // Fast path: with an empty ROB a pure bubble burst is limited
            // only by width. Model the burst analytically, leaving the last
            // `capacity` in flight conservatively drained.
            let cycles = n / self.width as u64;
            self.cycle += cycles;
            self.dispatched_this_cycle = (n % self.width as u64) as usize;
            self.retired += n;
            self.last_retire_cycle = self.last_retire_cycle.max(self.cycle);
            self.retired_in_cycle = 0;
            return;
        }
        for _ in 0..n {
            self.bubble();
        }
    }

    /// Cycle the model has dispatched up to (monotonic).
    pub fn current_cycle(&self) -> u64 {
        self.cycle
    }

    /// Drain all in-flight instructions; returns the final retire cycle.
    pub fn drain(&mut self) -> u64 {
        while !self.rob.is_empty() {
            self.retire_head();
        }
        self.last_retire_cycle.max(self.cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_limits_dispatch() {
        let mut rob = RobModel::new(4, 32);
        let cycles: Vec<u64> = (0..8).map(|_| rob.dispatch_slot()).collect();
        for _ in 0..8 {
            rob.complete_at(rob.current_cycle() + 1);
        }
        assert_eq!(&cycles[0..4], &[0, 0, 0, 0]);
        assert_eq!(&cycles[4..8], &[1, 1, 1, 1]);
    }

    #[test]
    fn bubbles_retire_at_width_ipc() {
        let mut rob = RobModel::new(4, 224);
        rob.bubbles(4000);
        let end = rob.drain();
        let ipc = 4000.0 / end as f64;
        assert!((3.5..=4.01).contains(&ipc), "ipc = {ipc}");
    }

    #[test]
    fn long_latency_load_blocks_retirement() {
        let mut rob = RobModel::new(4, 8);
        // One load that completes at cycle 1000.
        let d = rob.dispatch_slot();
        assert_eq!(d, 0);
        rob.complete_at(1000);
        // Fill the ROB behind it; dispatch stalls once the ROB is full, and
        // resumes only when the load retires at 1000.
        let mut last_dispatch = 0;
        for _ in 0..16 {
            last_dispatch = rob.dispatch_slot();
            rob.complete_at(last_dispatch + 1);
        }
        assert!(last_dispatch >= 1000, "dispatch stalled until {last_dispatch}");
        rob.drain();
        assert_eq!(rob.retired, 17);
    }

    #[test]
    fn independent_loads_overlap() {
        // Two DRAM-latency loads back-to-back: total time ~ 1 latency, not 2.
        let mut rob = RobModel::new(4, 224);
        let d1 = rob.dispatch_slot();
        rob.complete_at(d1 + 200);
        let d2 = rob.dispatch_slot();
        rob.complete_at(d2 + 200);
        let end = rob.drain();
        assert!(end < 250, "loads should overlap, end = {end}");
    }

    #[test]
    fn serialized_by_rob_capacity() {
        // With a 2-entry ROB, many 100-cycle loads can only overlap in pairs.
        let mut rob = RobModel::new(4, 2);
        for _ in 0..10 {
            let d = rob.dispatch_slot();
            rob.complete_at(d + 100);
        }
        let end = rob.drain();
        assert!(end >= 450, "expected heavy serialization, end = {end}");
    }

    #[test]
    fn dispatch_stalls_are_attributed_to_the_blocking_head() {
        let mut rob = RobModel::new(4, 2);
        let d = rob.dispatch_slot();
        rob.complete_tagged(d + 100, StallTag::Dram);
        let d2 = rob.dispatch_slot();
        rob.complete_tagged(d2 + 1, StallTag::Core);
        // The 2-entry ROB is full; the next dispatch waits on the DRAM head.
        let d3 = rob.dispatch_slot();
        rob.complete_at(d3 + 1);
        assert!(d3 >= 100, "dispatch resumed at {d3}");
        assert_eq!(rob.stalls.dram_wait, 100);
        assert_eq!(rob.stalls.mshr_full, 0);
        assert_eq!(rob.stalls.rob_full, 0);
    }

    #[test]
    fn mshr_tagged_head_charges_mshr_bucket() {
        let mut rob = RobModel::new(1, 1);
        let d = rob.dispatch_slot();
        rob.complete_tagged(d + 50, StallTag::MshrFull);
        let d2 = rob.dispatch_slot();
        rob.complete_at(d2 + 1);
        assert!(rob.stalls.mshr_full >= 49, "stalls: {:?}", rob.stalls);
        assert_eq!(rob.stalls.dram_wait, 0);
    }

    #[test]
    fn retire_counts_all() {
        let mut rob = RobModel::new(2, 4);
        rob.bubbles(100);
        let d = rob.dispatch_slot();
        rob.complete_at(d + 10);
        rob.drain();
        assert_eq!(rob.retired, 101);
    }

    #[test]
    fn fast_path_matches_slow_path_throughput() {
        let mut a = RobModel::new(4, 224);
        a.bubbles(10_000); // fast path
        let ea = a.drain();
        let mut b = RobModel::new(4, 224);
        for _ in 0..10_000 {
            b.bubble(); // slow path
        }
        let eb = b.drain();
        let diff = ea.abs_diff(eb);
        assert!(diff <= 224 / 4 + 2, "fast/slow divergence: {ea} vs {eb}");
    }
}
