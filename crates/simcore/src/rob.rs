//! Scoreboard model of the out-of-order core (Table I: 4-wide, 224-entry
//! ROB, 6-stage pipeline).
//!
//! Instructions dispatch in program order at up to `width` per cycle and
//! retire in order at up to `width` per cycle. A load's completion cycle
//! comes from the memory system; independent loads overlap freely until the
//! ROB fills behind a long-latency miss — the mechanism that makes DRAM
//! latency dominate graph-processing IPC (the paper's Finding 1/2 regime).

use simtel::{StallBuckets, StallTag};

/// Bits of a packed ROB entry spent on the stall tag.
const TAG_BITS: u32 = 2;
const TAG_MASK: u64 = (1 << TAG_BITS) - 1;

/// Pack a completion cycle and stall tag into one word. Completion cycles
/// stay far below 2^62, so the shift never drops bits.
#[inline]
fn pack(completion: u64, tag: StallTag) -> u64 {
    debug_assert!(completion < 1 << 62);
    (completion << TAG_BITS) | tag as u64
}

#[inline]
fn unpack_tag(entry: u64) -> StallTag {
    match entry & TAG_MASK {
        0 => StallTag::Core,
        1 => StallTag::Mem,
        2 => StallTag::Dram,
        _ => StallTag::MshrFull,
    }
}

/// The core timing model.
///
/// In-flight instructions live in a flat power-of-two ring of packed
/// `completion << 2 | tag` words (not a `VecDeque` of tuples): half the
/// bytes per entry and branch-free wraparound, which matters because every
/// simulated instruction passes through one push and one pop here.
#[derive(Debug)]
pub struct RobModel {
    capacity: usize,
    width: usize,
    /// Packed ring buffer; `ring_mask` is `buf.len() - 1`.
    buf: Box<[u64]>,
    ring_mask: usize,
    /// Ring index of the oldest in-flight instruction.
    head: usize,
    /// In-flight instruction count (`<= capacity`).
    len: usize,
    /// Cycle at which the next dispatch slot opens.
    cycle: u64,
    dispatched_this_cycle: usize,
    last_retire_cycle: u64,
    retired_in_cycle: usize,
    /// Total retired instructions.
    pub retired: u64,
    /// Cumulative dispatch-stall attribution (telemetry; maintained
    /// whether or not a sink is attached — it is a handful of adds).
    pub stalls: StallBuckets,
}

impl RobModel {
    pub fn new(width: usize, capacity: usize) -> Self {
        assert!(width > 0 && capacity > 0);
        let ring = capacity.next_power_of_two();
        RobModel {
            capacity,
            width,
            buf: vec![0; ring].into_boxed_slice(),
            ring_mask: ring - 1,
            head: 0,
            len: 0,
            cycle: 0,
            dispatched_this_cycle: 0,
            last_retire_cycle: 0,
            retired_in_cycle: 0,
            retired: 0,
            stalls: StallBuckets::default(),
        }
    }

    #[inline]
    fn push(&mut self, entry: u64) {
        debug_assert!(self.len < self.capacity);
        self.buf[(self.head + self.len) & self.ring_mask] = entry;
        self.len += 1;
    }

    /// Retire the oldest instruction, honoring in-order retirement and the
    /// retire-width limit; returns the cycle it left the ROB and what it
    /// was waiting on.
    #[inline]
    // simlint::allow(panic-path): head index wraps mod capacity; len > 0 is asserted above
    fn retire_head(&mut self) -> (u64, StallTag) {
        debug_assert!(self.len > 0, "retire_head is only called on a non-empty ROB");
        let entry = self.buf[self.head];
        self.head = (self.head + 1) & self.ring_mask;
        self.len -= 1;
        let (completion, tag) = (entry >> TAG_BITS, unpack_tag(entry));
        let earliest = completion.max(self.last_retire_cycle);
        if earliest > self.last_retire_cycle {
            self.last_retire_cycle = earliest;
            self.retired_in_cycle = 1;
        } else if self.retired_in_cycle < self.width {
            self.retired_in_cycle += 1;
        } else {
            self.last_retire_cycle += 1;
            self.retired_in_cycle = 1;
        }
        self.retired += 1;
        (self.last_retire_cycle, tag)
    }

    /// Claim a dispatch slot for the next instruction in program order and
    /// return its dispatch cycle. The caller must follow up with
    /// [`RobModel::complete_at`].
    pub fn dispatch_slot(&mut self) -> u64 {
        if self.dispatched_this_cycle >= self.width {
            self.cycle += 1;
            self.dispatched_this_cycle = 0;
        }
        // A full ROB stalls dispatch until the head retires; the wait is
        // charged to whatever the head was blocked on.
        while self.len >= self.capacity {
            let (freed_at, tag) = self.retire_head();
            if freed_at > self.cycle {
                self.stalls.charge(tag, freed_at - self.cycle);
                self.cycle = freed_at;
                self.dispatched_this_cycle = 0;
            }
        }
        self.dispatched_this_cycle += 1;
        self.cycle
    }

    /// Record that the instruction dispatched last completes at `completion`.
    pub fn complete_at(&mut self, completion: u64) {
        self.complete_tagged(completion, StallTag::Core);
    }

    /// [`RobModel::complete_at`] with an explicit stall tag naming what
    /// the instruction waits on (memory level, MSHR pressure).
    pub fn complete_tagged(&mut self, completion: u64, tag: StallTag) {
        debug_assert!(completion > self.cycle);
        self.push(pack(completion.max(self.cycle + 1), tag));
    }

    /// Dispatch one single-cycle (non-memory) instruction.
    pub fn bubble(&mut self) {
        let d = self.dispatch_slot();
        self.push(pack(d + 1, StallTag::Core));
    }

    /// Dispatch `n` single-cycle instructions.
    ///
    /// Batched: a bubble burst first fills the free ROB slots (no retire
    /// can trigger while `len < capacity`, so that phase skips the
    /// full-check entirely), then runs a tight retire-one/push-one loop in
    /// the full state. Both phases replicate [`RobModel::bubble`] exactly —
    /// same dispatch, retire, and stall-charge sequence — they only hoist
    /// the per-instruction branches out of the hot loop.
    // simlint::allow(panic-path): capacity is nonzero by RobModel construction
    pub fn bubbles(&mut self, n: u64) {
        if self.len == 0 && n > 2 * self.capacity as u64 {
            // Fast path: with an empty ROB a pure bubble burst is limited
            // only by width. Model the burst analytically, leaving the last
            // `capacity` in flight conservatively drained.
            let cycles = n / self.width as u64;
            self.cycle += cycles;
            self.dispatched_this_cycle = (n % self.width as u64) as usize;
            self.retired += n;
            self.last_retire_cycle = self.last_retire_cycle.max(self.cycle);
            self.retired_in_cycle = 0;
            return;
        }
        let mut remaining = n;
        // Fill phase: pushes only grow `len`, so no retire is possible
        // until the ROB is full.
        let fill = remaining.min((self.capacity - self.len) as u64);
        for _ in 0..fill {
            if self.dispatched_this_cycle >= self.width {
                self.cycle += 1;
                self.dispatched_this_cycle = 0;
            }
            self.dispatched_this_cycle += 1;
            self.buf[(self.head + self.len) & self.ring_mask] =
                pack(self.cycle + 1, StallTag::Core);
            self.len += 1;
        }
        remaining -= fill;
        // Full phase: every bubble retires the head (freeing exactly one
        // slot) and immediately reoccupies it, so `len` stays pinned at
        // `capacity` for the rest of the burst.
        while remaining > 0 {
            if self.dispatched_this_cycle >= self.width {
                self.cycle += 1;
                self.dispatched_this_cycle = 0;
            }
            let (freed_at, tag) = self.retire_head();
            if freed_at > self.cycle {
                self.stalls.charge(tag, freed_at - self.cycle);
                self.cycle = freed_at;
                self.dispatched_this_cycle = 0;
            }
            self.dispatched_this_cycle += 1;
            // `retire_head` advanced `head`, so the freed slot is at
            // `(head + capacity - 1) & ring_mask` = `len` entries past the
            // new head (`len == capacity - 1` here).
            self.buf[(self.head + self.len) & self.ring_mask] =
                pack(self.cycle + 1, StallTag::Core);
            self.len += 1;
            remaining -= 1;
        }
    }

    /// Cycle the model has dispatched up to (monotonic).
    pub fn current_cycle(&self) -> u64 {
        self.cycle
    }

    /// Drain all in-flight instructions; returns the final retire cycle.
    pub fn drain(&mut self) -> u64 {
        while self.len > 0 {
            self.retire_head();
        }
        self.last_retire_cycle.max(self.cycle)
    }

    /// Serialize the full core-model state (ring contents included — an
    /// in-flight long-latency load must survive a checkpoint).
    pub fn save_state(&self, w: &mut simstate::StateSink) {
        w.tag(b"ROB_");
        w.put_usize(self.capacity);
        w.put_usize(self.width);
        w.put_u64s(&self.buf);
        w.put_usize(self.head);
        w.put_usize(self.len);
        w.put_u64(self.cycle);
        w.put_usize(self.dispatched_this_cycle);
        w.put_u64(self.last_retire_cycle);
        w.put_usize(self.retired_in_cycle);
        w.put_u64(self.retired);
        w.put_u64(self.stalls.rob_full);
        w.put_u64(self.stalls.mshr_full);
        w.put_u64(self.stalls.dram_wait);
        w.put_u64(self.stalls.busy);
    }

    /// Restore state saved by [`RobModel::save_state`]. Geometry (capacity,
    /// width, ring size) must match this model's construction parameters;
    /// ring indices are domain-checked so a corrupt snapshot can never
    /// install an out-of-bounds head or an over-full ROB.
    pub fn load_state(
        &mut self,
        r: &mut simstate::StateSource,
    ) -> Result<(), simstate::StateError> {
        use simstate::StateError;
        r.expect_tag(b"ROB_")?;
        let capacity = r.get_usize()?;
        if capacity != self.capacity {
            return Err(StateError::ShapeMismatch {
                what: "rob capacity",
                expected: self.capacity as u64,
                found: capacity as u64,
            });
        }
        let width = r.get_usize()?;
        if width != self.width {
            return Err(StateError::ShapeMismatch {
                what: "rob width",
                expected: self.width as u64,
                found: width as u64,
            });
        }
        let mut buf = vec![0u64; self.buf.len()];
        r.read_u64s_into("rob ring", &mut buf)?;
        let head = r.get_usize()?;
        if head > self.ring_mask {
            return Err(StateError::BadValue { what: "rob head", found: head as u64 });
        }
        let len = r.get_usize()?;
        if len > self.capacity {
            return Err(StateError::BadValue { what: "rob len", found: len as u64 });
        }
        let cycle = r.get_u64()?;
        let dispatched_this_cycle = r.get_usize()?;
        if dispatched_this_cycle > self.width {
            return Err(StateError::BadValue {
                what: "rob dispatched_this_cycle",
                found: dispatched_this_cycle as u64,
            });
        }
        let last_retire_cycle = r.get_u64()?;
        let retired_in_cycle = r.get_usize()?;
        if retired_in_cycle > self.width {
            return Err(StateError::BadValue {
                what: "rob retired_in_cycle",
                found: retired_in_cycle as u64,
            });
        }
        let retired = r.get_u64()?;
        let stalls = StallBuckets {
            rob_full: r.get_u64()?,
            mshr_full: r.get_u64()?,
            dram_wait: r.get_u64()?,
            busy: r.get_u64()?,
        };
        self.buf.copy_from_slice(&buf);
        self.head = head;
        self.len = len;
        self.cycle = cycle;
        self.dispatched_this_cycle = dispatched_this_cycle;
        self.last_retire_cycle = last_retire_cycle;
        self.retired_in_cycle = retired_in_cycle;
        self.retired = retired;
        self.stalls = stalls;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_limits_dispatch() {
        let mut rob = RobModel::new(4, 32);
        let cycles: Vec<u64> = (0..8).map(|_| rob.dispatch_slot()).collect();
        for _ in 0..8 {
            rob.complete_at(rob.current_cycle() + 1);
        }
        assert_eq!(&cycles[0..4], &[0, 0, 0, 0]);
        assert_eq!(&cycles[4..8], &[1, 1, 1, 1]);
    }

    #[test]
    fn bubbles_retire_at_width_ipc() {
        let mut rob = RobModel::new(4, 224);
        rob.bubbles(4000);
        let end = rob.drain();
        let ipc = 4000.0 / end as f64;
        assert!((3.5..=4.01).contains(&ipc), "ipc = {ipc}");
    }

    #[test]
    fn long_latency_load_blocks_retirement() {
        let mut rob = RobModel::new(4, 8);
        // One load that completes at cycle 1000.
        let d = rob.dispatch_slot();
        assert_eq!(d, 0);
        rob.complete_at(1000);
        // Fill the ROB behind it; dispatch stalls once the ROB is full, and
        // resumes only when the load retires at 1000.
        let mut last_dispatch = 0;
        for _ in 0..16 {
            last_dispatch = rob.dispatch_slot();
            rob.complete_at(last_dispatch + 1);
        }
        assert!(last_dispatch >= 1000, "dispatch stalled until {last_dispatch}");
        rob.drain();
        assert_eq!(rob.retired, 17);
    }

    #[test]
    fn independent_loads_overlap() {
        // Two DRAM-latency loads back-to-back: total time ~ 1 latency, not 2.
        let mut rob = RobModel::new(4, 224);
        let d1 = rob.dispatch_slot();
        rob.complete_at(d1 + 200);
        let d2 = rob.dispatch_slot();
        rob.complete_at(d2 + 200);
        let end = rob.drain();
        assert!(end < 250, "loads should overlap, end = {end}");
    }

    #[test]
    fn serialized_by_rob_capacity() {
        // With a 2-entry ROB, many 100-cycle loads can only overlap in pairs.
        let mut rob = RobModel::new(4, 2);
        for _ in 0..10 {
            let d = rob.dispatch_slot();
            rob.complete_at(d + 100);
        }
        let end = rob.drain();
        assert!(end >= 450, "expected heavy serialization, end = {end}");
    }

    #[test]
    fn dispatch_stalls_are_attributed_to_the_blocking_head() {
        let mut rob = RobModel::new(4, 2);
        let d = rob.dispatch_slot();
        rob.complete_tagged(d + 100, StallTag::Dram);
        let d2 = rob.dispatch_slot();
        rob.complete_tagged(d2 + 1, StallTag::Core);
        // The 2-entry ROB is full; the next dispatch waits on the DRAM head.
        let d3 = rob.dispatch_slot();
        rob.complete_at(d3 + 1);
        assert!(d3 >= 100, "dispatch resumed at {d3}");
        assert_eq!(rob.stalls.dram_wait, 100);
        assert_eq!(rob.stalls.mshr_full, 0);
        assert_eq!(rob.stalls.rob_full, 0);
    }

    #[test]
    fn mshr_tagged_head_charges_mshr_bucket() {
        let mut rob = RobModel::new(1, 1);
        let d = rob.dispatch_slot();
        rob.complete_tagged(d + 50, StallTag::MshrFull);
        let d2 = rob.dispatch_slot();
        rob.complete_at(d2 + 1);
        assert!(rob.stalls.mshr_full >= 49, "stalls: {:?}", rob.stalls);
        assert_eq!(rob.stalls.dram_wait, 0);
    }

    #[test]
    fn retire_counts_all() {
        let mut rob = RobModel::new(2, 4);
        rob.bubbles(100);
        let d = rob.dispatch_slot();
        rob.complete_at(d + 10);
        rob.drain();
        assert_eq!(rob.retired, 101);
    }

    #[test]
    fn batched_bubbles_match_single_bubbles_exactly() {
        // Drive both models through fill + full-state phases: a long-latency
        // load, a burst larger than the ROB (forcing batched retires behind
        // the load), another load, another burst. Every observable — cycle,
        // retired count, stall attribution, drain time — must be identical.
        let run = |batched: bool| {
            let mut rob = RobModel::new(4, 32);
            let d = rob.dispatch_slot();
            rob.complete_tagged(d + 500, StallTag::Dram);
            if batched {
                rob.bubbles(100);
            } else {
                for _ in 0..100 {
                    rob.bubble();
                }
            }
            let d = rob.dispatch_slot();
            rob.complete_tagged(d + 200, StallTag::Mem);
            if batched {
                rob.bubbles(60);
            } else {
                for _ in 0..60 {
                    rob.bubble();
                }
            }
            let end = rob.drain();
            (end, rob.current_cycle(), rob.retired, rob.stalls)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn snapshot_mid_flight_restores_bit_identically() {
        // Save with in-flight loads pending, restore into a fresh model,
        // and run both through the same tail: every observable matches.
        let mut a = RobModel::new(4, 32);
        let d = a.dispatch_slot();
        a.complete_tagged(d + 500, StallTag::Dram);
        a.bubbles(40);

        let mut w = simstate::StateSink::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut b = RobModel::new(4, 32);
        let mut r = simstate::StateSource::new(&bytes);
        b.load_state(&mut r).unwrap();
        r.expect_end().unwrap();

        let tail = |rob: &mut RobModel| {
            let d = rob.dispatch_slot();
            rob.complete_tagged(d + 100, StallTag::MshrFull);
            rob.bubbles(300);
            let end = rob.drain();
            (end, rob.current_cycle(), rob.retired, rob.stalls)
        };
        assert_eq!(tail(&mut a), tail(&mut b));
    }

    #[test]
    fn snapshot_rejects_geometry_and_domain_corruption() {
        let mut a = RobModel::new(4, 32);
        a.bubbles(10);
        let mut w = simstate::StateSink::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();

        // Different construction geometry.
        let mut wrong = RobModel::new(4, 64);
        assert!(wrong.load_state(&mut simstate::StateSource::new(&bytes)).is_err());

        // Domain corruption: a head index beyond the ring must be refused
        // (capacity and width are the first two u64s after the 4-byte tag,
        // the ring length prefix + 32 entries follow, then head).
        let mut evil = bytes.clone();
        let head_off = 4 + 8 + 8 + 8 + 32 * 8;
        evil[head_off..head_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut b = RobModel::new(4, 32);
        assert!(b.load_state(&mut simstate::StateSource::new(&evil)).is_err());
    }

    #[test]
    fn fast_path_matches_slow_path_throughput() {
        let mut a = RobModel::new(4, 224);
        a.bubbles(10_000); // fast path
        let ea = a.drain();
        let mut b = RobModel::new(4, 224);
        for _ in 0..10_000 {
            b.bubble(); // slow path
        }
        let eb = b.drain();
        let diff = ea.abs_diff(eb);
        assert!(diff <= 224 / 4 + 2, "fast/slow divergence: {ea} vs {eb}");
    }
}
