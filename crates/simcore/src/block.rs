//! Address arithmetic for the simulated 48-bit physical address space.
//!
//! All caches in the hierarchy operate on 64-byte blocks, matching the
//! configuration evaluated in the paper (Table I assumes 48-bit physical
//! addresses and 64 B cache blocks).

/// log2 of the cache block size in bytes.
pub const BLOCK_BITS: u32 = 6;

/// Cache block size in bytes.
pub const BLOCK_BYTES: u64 = 1 << BLOCK_BITS;

/// log2 of the (4 KiB) page size.
pub const PAGE_BITS: u32 = 12;

/// Page size in bytes.
pub const PAGE_BYTES: u64 = 1 << PAGE_BITS;

/// Number of physical address bits modelled (Table IV assumes 48).
pub const PHYS_ADDR_BITS: u32 = 48;

/// Mask selecting the byte offset within a block.
pub const BLOCK_OFFSET_MASK: u64 = BLOCK_BYTES - 1;

/// Convert a byte address to its block (line) address.
#[inline(always)]
pub fn block_of(addr: u64) -> u64 {
    addr >> BLOCK_BITS
}

/// Convert a block address back to the byte address of its first byte.
#[inline(always)]
pub fn block_base(block: u64) -> u64 {
    block << BLOCK_BITS
}

/// Convert a byte address to its 4 KiB page number.
#[inline(always)]
pub fn page_of(addr: u64) -> u64 {
    addr >> PAGE_BITS
}

/// Byte offset of `addr` within its block.
#[inline(always)]
pub fn block_offset(addr: u64) -> u64 {
    addr & BLOCK_OFFSET_MASK
}

/// Word index (8-byte granularity) of `addr` within its block.
///
/// Used by the Line Distillation baseline, which tracks per-word usage.
#[inline(always)]
pub fn word_in_block(addr: u64) -> usize {
    ((addr & BLOCK_OFFSET_MASK) >> 3) as usize
}

/// Number of 8-byte words per block.
pub const WORDS_PER_BLOCK: usize = (BLOCK_BYTES / 8) as usize;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trip() {
        for addr in [0u64, 1, 63, 64, 65, 4095, 4096, (1 << 47) + 123] {
            let b = block_of(addr);
            assert!(block_base(b) <= addr);
            assert!(addr < block_base(b) + BLOCK_BYTES);
        }
    }

    #[test]
    fn same_block_iff_same_line() {
        assert_eq!(block_of(0), block_of(63));
        assert_ne!(block_of(63), block_of(64));
    }

    #[test]
    fn page_contains_64_blocks() {
        assert_eq!(PAGE_BYTES / BLOCK_BYTES, 64);
        assert_eq!(page_of(4095), 0);
        assert_eq!(page_of(4096), 1);
    }

    #[test]
    fn word_index_is_8_byte_granular() {
        assert_eq!(word_in_block(0), 0);
        assert_eq!(word_in_block(7), 0);
        assert_eq!(word_in_block(8), 1);
        assert_eq!(word_in_block(63), 7);
        assert_eq!(WORDS_PER_BLOCK, 8);
    }
}
