//! MESI directory coherence (Section III-C references MESI \[37\] /
//! MOESI \[43\]): a full-map directory tracking each block's global state
//! and sharer set, with the state machine the SDCDir extension plugs into.
//!
//! The timing engines keep multi-programmed mixes in disjoint address
//! spaces (as the paper's evaluation does), so this module's role there is
//! the *own-core* consistency the SDC needs; it is nonetheless implemented
//! and verified as the full multi-core protocol so shared-memory workloads
//! are supported by the substrate.

use std::collections::BTreeMap;

/// Per-block global coherence state, from the directory's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// No on-chip copy.
    Invalid,
    /// One or more clean copies (MESI S, or E with one sharer).
    Shared,
    /// Exactly one dirty copy (MESI M).
    Modified,
}

/// What the requester must do, and to whom, before its access proceeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirAction {
    /// Fetch from memory; no other copies exist.
    FetchFromMemory,
    /// A clean copy exists on-chip; source it from any sharer.
    SourceFromSharer { sharer: usize },
    /// The owner holds it dirty: it must write back / forward, and (for
    /// writes) invalidate.
    OwnerForward { owner: usize },
}

#[derive(Debug, Clone)]
struct DirEntry {
    state: DirState,
    sharers: u64,
}

/// Directory statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectoryStats {
    pub read_requests: u64,
    pub write_requests: u64,
    pub invalidations_sent: u64,
    pub forwards: u64,
}

/// A full-map MESI directory.
#[derive(Debug, Default)]
pub struct Directory {
    entries: BTreeMap<u64, DirEntry>,
    pub stats: DirectoryStats,
}

impl Directory {
    pub fn new() -> Self {
        Self::default()
    }

    /// State of `block` (Invalid if untracked).
    pub fn state(&self, block: u64) -> DirState {
        self.entries.get(&block).map_or(DirState::Invalid, |e| e.state)
    }

    /// Sharer bit vector of `block`.
    pub fn sharers(&self, block: u64) -> u64 {
        self.entries.get(&block).map_or(0, |e| e.sharers)
    }

    fn one_sharer(sharers: u64) -> usize {
        debug_assert_ne!(sharers, 0);
        sharers.trailing_zeros() as usize
    }

    /// Core `core` wants to read `block`. Returns what must happen; the
    /// directory state is updated to include the new sharer.
    pub fn read(&mut self, block: u64, core: usize) -> DirAction {
        self.stats.read_requests += 1;
        let bit = 1u64 << core;
        match self.entries.get_mut(&block) {
            None => {
                self.entries.insert(block, DirEntry { state: DirState::Shared, sharers: bit });
                DirAction::FetchFromMemory
            }
            Some(e) => match e.state {
                DirState::Invalid => {
                    e.state = DirState::Shared;
                    e.sharers = bit;
                    DirAction::FetchFromMemory
                }
                DirState::Shared => {
                    // Invariant: Shared entries always have >= 1 sharer.
                    let src = Self::one_sharer(e.sharers);
                    e.sharers |= bit;
                    self.stats.forwards += 1;
                    DirAction::SourceFromSharer { sharer: src }
                }
                DirState::Modified => {
                    let owner = Self::one_sharer(e.sharers);
                    // Owner forwards and downgrades: both become sharers.
                    e.state = DirState::Shared;
                    e.sharers |= bit;
                    self.stats.forwards += 1;
                    DirAction::OwnerForward { owner }
                }
            },
        }
    }

    /// Core `core` wants to write `block`. All other copies are
    /// invalidated; the entry becomes Modified owned by `core`.
    /// Returns the action plus how many invalidations were sent.
    pub fn write(&mut self, block: u64, core: usize) -> (DirAction, u32) {
        self.stats.write_requests += 1;
        let bit = 1u64 << core;
        match self.entries.get_mut(&block) {
            None => {
                self.entries.insert(block, DirEntry { state: DirState::Modified, sharers: bit });
                (DirAction::FetchFromMemory, 0)
            }
            Some(e) => {
                let action = match e.state {
                    DirState::Invalid => DirAction::FetchFromMemory,
                    DirState::Shared => {
                        if e.sharers & !bit != 0 {
                            DirAction::SourceFromSharer {
                                sharer: Self::one_sharer(e.sharers & !bit),
                            }
                        } else {
                            // Upgrading our own clean copy.
                            DirAction::SourceFromSharer { sharer: core }
                        }
                    }
                    DirState::Modified => {
                        let owner = Self::one_sharer(e.sharers);
                        if owner == core {
                            DirAction::SourceFromSharer { sharer: core }
                        } else {
                            self.stats.forwards += 1;
                            DirAction::OwnerForward { owner }
                        }
                    }
                };
                let invalidated = (e.sharers & !bit).count_ones();
                self.stats.invalidations_sent += u64::from(invalidated);
                e.state = DirState::Modified;
                e.sharers = bit;
                (action, invalidated)
            }
        }
    }

    /// Core `core` evicts its copy of `block` (clean or dirty). The
    /// directory drops it from the sharer set; the last leaver clears the
    /// entry. Returns true if memory must be updated (dirty owner left).
    pub fn evict(&mut self, block: u64, core: usize) -> bool {
        let bit = 1u64 << core;
        let Some(e) = self.entries.get_mut(&block) else {
            return false;
        };
        let was_owner_dirty = e.state == DirState::Modified && e.sharers == bit;
        e.sharers &= !bit;
        if e.sharers == 0 {
            self.entries.remove(&block);
        } else if was_owner_dirty {
            unreachable!("dirty block with multiple sharers");
        }
        was_owner_dirty
    }

    /// Protocol invariant check (test/debug aid): a Modified block has
    /// exactly one sharer; Shared blocks have at least one; no entry has
    /// an empty sharer set.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (&block, e) in &self.entries {
            match e.state {
                DirState::Modified if e.sharers.count_ones() != 1 => {
                    return Err(format!(
                        "block {block}: Modified with {} sharers",
                        e.sharers.count_ones()
                    ));
                }
                DirState::Shared if e.sharers == 0 => {
                    return Err(format!("block {block}: Shared with no sharers"));
                }
                DirState::Invalid => {
                    return Err(format!("block {block}: tracked but Invalid"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_read_fetches_from_memory() {
        let mut d = Directory::new();
        assert_eq!(d.read(42, 0), DirAction::FetchFromMemory);
        assert_eq!(d.state(42), DirState::Shared);
        assert_eq!(d.sharers(42), 0b1);
    }

    #[test]
    fn second_reader_sources_from_first() {
        let mut d = Directory::new();
        d.read(42, 0);
        assert_eq!(d.read(42, 2), DirAction::SourceFromSharer { sharer: 0 });
        assert_eq!(d.sharers(42), 0b101);
        d.check_invariants().unwrap();
    }

    #[test]
    fn write_invalidates_all_other_sharers() {
        let mut d = Directory::new();
        d.read(42, 0);
        d.read(42, 1);
        d.read(42, 2);
        let (_, invalidated) = d.write(42, 3);
        assert_eq!(invalidated, 3);
        assert_eq!(d.state(42), DirState::Modified);
        assert_eq!(d.sharers(42), 0b1000);
        d.check_invariants().unwrap();
    }

    #[test]
    fn read_after_modified_downgrades_owner() {
        let mut d = Directory::new();
        d.write(42, 1);
        assert_eq!(d.read(42, 0), DirAction::OwnerForward { owner: 1 });
        assert_eq!(d.state(42), DirState::Shared);
        assert_eq!(d.sharers(42), 0b11);
        d.check_invariants().unwrap();
    }

    #[test]
    fn write_upgrade_from_own_shared_copy_sends_no_self_invalidation() {
        let mut d = Directory::new();
        d.read(42, 0);
        let (action, invalidated) = d.write(42, 0);
        assert_eq!(action, DirAction::SourceFromSharer { sharer: 0 });
        assert_eq!(invalidated, 0);
        assert_eq!(d.state(42), DirState::Modified);
    }

    #[test]
    fn write_to_remote_modified_forwards_from_owner() {
        let mut d = Directory::new();
        d.write(42, 2);
        let (action, invalidated) = d.write(42, 0);
        assert_eq!(action, DirAction::OwnerForward { owner: 2 });
        assert_eq!(invalidated, 1);
        assert_eq!(d.sharers(42), 0b1);
    }

    #[test]
    fn dirty_eviction_writes_back_and_clears() {
        let mut d = Directory::new();
        d.write(42, 0);
        assert!(d.evict(42, 0), "dirty owner's eviction must update memory");
        assert_eq!(d.state(42), DirState::Invalid);
        assert_eq!(d.tracked_blocks(), 0);
    }

    #[test]
    fn clean_eviction_needs_no_writeback() {
        let mut d = Directory::new();
        d.read(42, 0);
        d.read(42, 1);
        assert!(!d.evict(42, 0));
        assert_eq!(d.state(42), DirState::Shared);
        assert_eq!(d.sharers(42), 0b10);
        assert!(!d.evict(42, 1));
        assert_eq!(d.tracked_blocks(), 0);
    }

    #[test]
    fn random_protocol_walk_preserves_invariants() {
        let mut d = Directory::new();
        let mut x = 0xACE1u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let block = (x >> 8) % 64;
            let core = ((x >> 16) % 4) as usize;
            match x % 3 {
                0 => {
                    d.read(block, core);
                }
                1 => {
                    d.write(block, core);
                }
                _ => {
                    d.evict(block, core);
                }
            }
            d.check_invariants().unwrap();
        }
        assert!(d.stats.read_requests > 0);
        assert!(d.stats.invalidations_sent > 0);
    }
}
