//! DDR4-like main-memory timing model: channels x banks, open-page row
//! buffers, and data-bus occupancy (Table I: 2.933 GT/s DDR4,
//! tRP = tRCD = tCAS = 24 bus cycles).

use crate::config::DramConfig;
use crate::stats::DramStats;

/// Row-buffer outcome of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    Hit,
    /// Bank was idle (no row open): activate + CAS.
    Miss,
    /// Another row was open: precharge + activate + CAS.
    Conflict,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    next_free: u64,
}

/// Scoreboard DRAM model. All times are core cycles.
#[derive(Debug)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    bus_free: Vec<u64>,
    pub stats: DramStats,
    // Pre-converted core-cycle latencies.
    cas: u64,
    rcd_cas: u64,
    rp_rcd_cas: u64,
    burst: u64,
    /// Telemetry hook (disabled by default; row conflicts emit events).
    tel: simtel::TelemetryHandle,
}

impl Dram {
    pub fn new(cfg: &DramConfig) -> Self {
        let n = cfg.channels * cfg.banks_per_channel;
        Dram {
            cfg: *cfg,
            banks: vec![Bank { open_row: None, next_free: 0 }; n],
            bus_free: vec![0; cfg.channels],
            stats: DramStats::default(),
            cas: cfg.to_core_cycles(cfg.t_cas),
            rcd_cas: cfg.to_core_cycles(cfg.t_rcd + cfg.t_cas),
            rp_rcd_cas: cfg.to_core_cycles(cfg.t_rp + cfg.t_rcd + cfg.t_cas),
            burst: cfg.to_core_cycles(cfg.t_burst),
            tel: simtel::TelemetryHandle::disabled(),
        }
    }

    /// Attach the telemetry handle row-conflict events flow through.
    pub fn attach_telemetry(&mut self, tel: simtel::TelemetryHandle) {
        self.tel = tel;
    }

    /// Address mapping: low block bits pick the channel (spreads sequential
    /// blocks across channels), the next bits are the column within a row
    /// (64 blocks = one 4 KiB row), then bank, then row — so a sequential
    /// stream enjoys row-buffer hits while still rotating banks across rows.
    // simlint::allow(panic-path): channel/bank/row geometry divisors come from DramConfig and are nonzero by construction
    fn map(&self, block: u64) -> (usize, usize, u64) {
        let channels = self.cfg.channels as u64;
        let banks = self.cfg.banks_per_channel as u64;
        let channel = (block % channels) as usize;
        let rest = block / channels / 64; // strip column bits
        let bank = (rest % banks) as usize;
        let row = rest / banks;
        (channel, bank, row)
    }

    /// Service a block access issued at `now`; returns the completion cycle.
    pub fn access(&mut self, block: u64, is_write: bool, now: u64) -> u64 {
        let (channel, bank_idx, row) = self.map(block);
        let bank = &mut self.banks[channel * self.cfg.banks_per_channel + bank_idx];

        let (outcome, access_lat) = match bank.open_row {
            Some(r) if r == row => (RowOutcome::Hit, self.cas),
            Some(_) => (RowOutcome::Conflict, self.rp_rcd_cas),
            None => (RowOutcome::Miss, self.rcd_cas),
        };

        let start = now.max(bank.next_free);
        let data_ready = start + access_lat;
        // Serialize the channel data bus for the burst transfer.
        let bus_start = data_ready.max(self.bus_free[channel]);
        let done = bus_start + self.burst;

        bank.open_row = Some(row);
        // Bank occupancy: column reads to an open row pipeline at the
        // burst rate (tCCD); activations/precharges occupy the bank for
        // their array time. The full CAS latency is paid once per request
        // (data_ready), not per-bank serialization.
        bank.next_free = start + (access_lat - self.cas) + self.burst;
        self.bus_free[channel] = done;

        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Miss => self.stats.row_misses += 1,
            RowOutcome::Conflict => {
                self.stats.row_conflicts += 1;
                self.tel.event(start, || simtel::EventKind::DramRowConflict);
            }
        }
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
            self.stats.total_read_latency += done - now;
        }
        done
    }

    /// Issue a prefetch access at `now`, unless the target bank or the
    /// channel bus is already backed up by more than `slack` cycles — in
    /// which case the prefetch is dropped (real memory controllers bound
    /// their prefetch queues and drop on overflow, which is what keeps
    /// useless next-line prefetches on random streams from saturating the
    /// DRAM). Returns true if the prefetch was issued.
    pub fn try_prefetch(&mut self, block: u64, now: u64, slack: u64) -> bool {
        let (channel, bank_idx, _) = self.map(block);
        let bank = &self.banks[channel * self.cfg.banks_per_channel + bank_idx];
        if bank.next_free > now + slack || self.bus_free[channel] > now + slack {
            self.stats.prefetches_dropped += 1;
            return false;
        }
        self.access(block, false, now);
        true
    }

    /// Serialize row-buffer and bus scoreboard state plus stats. Config
    /// and the derived latencies are not stored (validated via the
    /// snapshot's config hash); the telemetry handle is re-attached by the
    /// caller after restore.
    pub fn save_state(&self, w: &mut simstate::StateSink) {
        w.tag(b"DRAM");
        w.put_usize(self.banks.len());
        for bank in &self.banks {
            w.put_opt_u64(bank.open_row);
            w.put_u64(bank.next_free);
        }
        w.put_u64s(&self.bus_free);
        self.stats.save_state(w);
    }

    /// Restore state saved by [`Self::save_state`] into a model of the same
    /// channel/bank geometry.
    pub fn load_state(
        &mut self,
        r: &mut simstate::StateSource,
    ) -> Result<(), simstate::StateError> {
        r.expect_tag(b"DRAM")?;
        let n = r.get_usize()?;
        if n != self.banks.len() {
            return Err(simstate::StateError::ShapeMismatch {
                what: "dram banks",
                expected: self.banks.len() as u64,
                found: n as u64,
            });
        }
        for bank in &mut self.banks {
            bank.open_row = r.get_opt_u64()?;
            bank.next_free = r.get_u64()?;
        }
        r.read_u64s_into("dram bus_free", &mut self.bus_free)?;
        self.stats.load_state(r)?;
        Ok(())
    }

    /// Best-case (unloaded row hit) access latency in core cycles.
    pub fn min_latency(&self) -> u64 {
        self.cas + self.burst
    }

    /// Unloaded closed-row latency in core cycles.
    pub fn closed_row_latency(&self) -> u64 {
        self.rcd_cas + self.burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn dram() -> Dram {
        Dram::new(&SystemConfig::baseline(1).dram)
    }

    #[test]
    fn first_access_is_row_miss() {
        let mut d = dram();
        let done = d.access(0, false, 0);
        assert_eq!(d.stats.row_misses, 1);
        assert_eq!(done, d.closed_row_latency());
    }

    #[test]
    fn same_row_second_access_is_hit() {
        let mut d = dram();
        let t1 = d.access(0, false, 0);
        // Next sequential block within the same channel stride lands in the
        // same row: block + channels stays in the same bank/row.
        let same_row_block = d.cfg.channels as u64;
        let t2 = d.access(same_row_block, false, t1);
        assert_eq!(d.stats.row_hits, 1);
        assert_eq!(t2 - t1, d.min_latency());
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut d = dram();
        let stride = (d.cfg.channels * d.cfg.banks_per_channel * 64) as u64;
        let t1 = d.access(0, false, 0);
        let t2 = d.access(stride, false, t1);
        assert_eq!(d.stats.row_conflicts, 1);
        assert!(t2 - t1 > d.min_latency());
    }

    #[test]
    fn sequential_blocks_hit_open_row() {
        let mut d = dram();
        let mut t = d.access(0, false, 0);
        // The next 63 blocks of the same channel stay within the row.
        for i in 1..64u64 {
            t = d.access(i * d.cfg.channels as u64, false, t);
        }
        assert_eq!(d.stats.row_hits, 63);
        assert_eq!(d.stats.row_misses, 1);
    }

    #[test]
    fn completion_is_monotonic_per_bank() {
        let mut d = dram();
        let mut last = 0;
        for i in 0..100u64 {
            let done = d.access(i * 977, false, i);
            assert!(done > i);
            // Global completion need not be monotonic across banks, but must
            // always be after issue.
            last = last.max(done);
        }
        assert!(last > 0);
    }

    #[test]
    fn busy_bank_queues_requests() {
        let mut d = dram();
        let t1 = d.access(0, false, 0);
        // Immediately hitting the same bank at cycle 0 queues behind t1.
        let stride = (d.cfg.channels * d.cfg.banks_per_channel * 64) as u64;
        let t2 = d.access(stride, false, 0);
        assert!(t2 > t1);
    }

    #[test]
    fn reads_and_writes_counted() {
        let mut d = dram();
        d.access(0, false, 0);
        d.access(64, true, 0);
        assert_eq!(d.stats.reads, 1);
        assert_eq!(d.stats.writes, 1);
        assert!(d.stats.mean_read_latency() > 0.0);
    }

    #[test]
    fn parallel_banks_overlap() {
        let mut d = dram();
        // Two accesses to different banks of the same channel at the same
        // cycle: bank latencies overlap, only the burst serializes on the
        // data bus.
        let bank_stride = 64 * d.cfg.channels as u64;
        let t1 = d.access(0, false, 0);
        let t2 = d.access(bank_stride, false, 0);
        assert!(t2 - t1 <= d.burst, "bank overlap broken: {t1} vs {t2}");
    }
}
