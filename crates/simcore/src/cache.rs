//! Generic set-associative, write-back cache with pluggable replacement.
//!
//! The cache tracks tags and state only (the simulator never moves data);
//! per-word usage bits are kept for the Line Distillation baseline.

use crate::block::word_in_block;
use crate::config::CacheConfig;
use crate::replacement::{make_policy, ReplCtx, ReplacementPolicy};
use crate::stats::CacheStats;

/// One cache line's bookkeeping state.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheLine {
    pub tag: u64,
    pub valid: bool,
    pub dirty: bool,
    /// Line was filled by a prefetcher and not yet demanded.
    pub prefetched: bool,
    /// Bitmap of 8-byte words touched by demand accesses while resident.
    pub used_words: u8,
}

/// A dirty line pushed out of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    pub block: u64,
    pub dirty: bool,
    /// Words demanded while the line was resident (Line Distillation).
    pub used_words: u8,
}

/// Result of a demand lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    Hit,
    Miss,
}

/// Set-associative cache.
pub struct Cache {
    sets: usize,
    ways: usize,
    lines: Vec<CacheLine>,
    policy: Box<dyn ReplacementPolicy>,
    pub stats: CacheStats,
    /// Lookup latency in core cycles.
    pub latency: u64,
    /// Monotonic demand-access position (feeds T-OPT's ReplCtx).
    pos: u32,
}

impl Cache {
    pub fn new(cfg: &CacheConfig) -> Self {
        Cache {
            sets: cfg.sets,
            ways: cfg.ways,
            lines: vec![CacheLine::default(); cfg.sets * cfg.ways],
            policy: make_policy(cfg.replacement, cfg.sets, cfg.ways),
            stats: CacheStats::default(),
            latency: cfg.latency,
            pos: 0,
        }
    }

    pub fn sets(&self) -> usize {
        self.sets
    }

    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_of(&self, block: u64) -> usize {
        (block % self.sets as u64) as usize
    }

    #[inline]
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        (0..self.ways).find(|&w| {
            let l = &self.lines[base + w];
            l.valid && l.tag == tag
        })
    }

    /// Current demand-access position counter.
    pub fn position(&self) -> u32 {
        self.pos
    }

    /// Demand access. Updates replacement state, dirty and word-usage bits.
    /// Does *not* fill on miss; the caller drives the fill path so that
    /// MSHR and lower-level timing can be modelled.
    pub fn access(&mut self, addr: u64, block: u64, is_write: bool, ctx: ReplCtx) -> LookupResult {
        self.pos = self.pos.wrapping_add(1);
        let set = self.set_of(block);
        let tag = block;
        match self.find(set, tag) {
            Some(way) => {
                self.stats.record_hit();
                let line = &mut self.lines[set * self.ways + way];
                if line.prefetched {
                    self.stats.prefetch_hits += 1;
                    line.prefetched = false;
                }
                if is_write {
                    line.dirty = true;
                }
                line.used_words |= 1 << word_in_block(addr);
                self.policy.on_hit(set, way, ReplCtx { pos: self.pos, ..ctx });
                LookupResult::Hit
            }
            None => {
                self.stats.record_miss();
                LookupResult::Miss
            }
        }
    }

    /// Fill `block` (after a demand miss or on behalf of a prefetcher).
    /// Returns the eviction the fill displaced, if any.
    pub fn fill(
        &mut self,
        addr: u64,
        block: u64,
        is_write: bool,
        prefetched: bool,
        ctx: ReplCtx,
    ) -> Option<Eviction> {
        let set = self.set_of(block);
        if let Some(way) = self.find(set, block) {
            // Already present (e.g. race between demand fill and prefetch):
            // just merge state.
            let line = &mut self.lines[set * self.ways + way];
            line.dirty |= is_write;
            if !prefetched {
                line.prefetched = false;
                line.used_words |= 1 << word_in_block(addr);
            }
            return None;
        }
        let base = set * self.ways;
        let (way, evicted) = match (0..self.ways).find(|&w| !self.lines[base + w].valid) {
            Some(w) => (w, None),
            None => {
                let w = self.policy.victim(set);
                let old = self.lines[base + w];
                (w, Some(Eviction { block: old.tag, dirty: old.dirty, used_words: old.used_words }))
            }
        };
        if prefetched {
            self.stats.prefetch_fills += 1;
        } else {
            self.stats.fills += 1;
        }
        self.lines[base + way] = CacheLine {
            tag: block,
            valid: true,
            dirty: is_write,
            prefetched,
            used_words: if prefetched { 0 } else { 1 << word_in_block(addr) },
        };
        self.policy.on_fill(set, way, ReplCtx { pos: self.pos, ..ctx });
        if evicted.is_some() {
            self.stats.writebacks += u64::from(evicted.is_some_and(|e| e.dirty));
        }
        evicted
    }

    /// Check for presence without disturbing any state (coherence probes).
    pub fn probe(&self, block: u64) -> bool {
        self.find(self.set_of(block), block).is_some()
    }

    /// Invalidate `block` if present; returns whether it was dirty.
    pub fn invalidate(&mut self, block: u64) -> Option<bool> {
        let set = self.set_of(block);
        let way = self.find(set, block)?;
        let line = &mut self.lines[set * self.ways + way];
        let dirty = line.dirty;
        *line = CacheLine::default();
        self.stats.invalidations += 1;
        Some(dirty)
    }

    /// Mark a resident block dirty (write forwarded into this level).
    pub fn mark_dirty(&mut self, block: u64) -> bool {
        let set = self.set_of(block);
        if let Some(way) = self.find(set, block) {
            self.lines[set * self.ways + way].dirty = true;
            true
        } else {
            false
        }
    }

    /// Number of currently valid lines (test/debug aid).
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("sets", &self.sets)
            .field("ways", &self.ways)
            .field("latency", &self.latency)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrefetcherKind, ReplacementKind};

    fn small_cache(sets: usize, ways: usize) -> Cache {
        Cache::new(&CacheConfig {
            sets,
            ways,
            latency: 1,
            mshr_entries: 4,
            replacement: ReplacementKind::Lru,
            prefetcher: PrefetcherKind::None,
        })
    }

    fn addr_of(block: u64) -> u64 {
        block << crate::block::BLOCK_BITS
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache(4, 2);
        let b = 100;
        assert_eq!(c.access(addr_of(b), b, false, ReplCtx::NONE), LookupResult::Miss);
        assert!(c.fill(addr_of(b), b, false, false, ReplCtx::NONE).is_none());
        assert_eq!(c.access(addr_of(b), b, false, ReplCtx::NONE), LookupResult::Hit);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.fills, 1);
    }

    #[test]
    fn conflict_eviction_in_same_set() {
        let mut c = small_cache(4, 2);
        // Blocks 0, 4, 8 all map to set 0 in a 4-set cache.
        for b in [0u64, 4, 8] {
            c.access(addr_of(b), b, false, ReplCtx::NONE);
            c.fill(addr_of(b), b, false, false, ReplCtx::NONE);
        }
        // Block 0 was LRU and must have been evicted.
        assert!(!c.probe(0));
        assert!(c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn write_makes_dirty_and_eviction_reports_it() {
        let mut c = small_cache(1, 1);
        c.access(addr_of(7), 7, true, ReplCtx::NONE);
        c.fill(addr_of(7), 7, true, false, ReplCtx::NONE);
        let ev = c.fill(addr_of(9), 9, false, false, ReplCtx::NONE).unwrap();
        assert_eq!(ev.block, 7);
        assert!(ev.dirty);
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn clean_eviction_not_a_writeback() {
        let mut c = small_cache(1, 1);
        c.fill(addr_of(7), 7, false, false, ReplCtx::NONE);
        let ev = c.fill(addr_of(9), 9, false, false, ReplCtx::NONE).unwrap();
        assert!(!ev.dirty);
        assert_eq!(c.stats.writebacks, 0);
    }

    #[test]
    fn prefetch_fill_then_demand_hit_counts_prefetch_hit() {
        let mut c = small_cache(4, 2);
        c.fill(addr_of(3), 3, false, true, ReplCtx::NONE);
        assert_eq!(c.stats.prefetch_fills, 1);
        assert_eq!(c.access(addr_of(3), 3, false, ReplCtx::NONE), LookupResult::Hit);
        assert_eq!(c.stats.prefetch_hits, 1);
        // Second hit no longer counts as a prefetch hit.
        c.access(addr_of(3), 3, false, ReplCtx::NONE);
        assert_eq!(c.stats.prefetch_hits, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache(4, 2);
        c.fill(addr_of(5), 5, true, false, ReplCtx::NONE);
        assert_eq!(c.invalidate(5), Some(true));
        assert!(!c.probe(5));
        assert_eq!(c.invalidate(5), None);
        assert_eq!(c.stats.invalidations, 1);
    }

    #[test]
    fn used_words_accumulate() {
        let mut c = small_cache(1, 1);
        let b = 0u64;
        c.fill(0, b, false, false, ReplCtx::NONE); // word 0
        c.access(8, b, false, ReplCtx::NONE); // word 1
        c.access(56, b, false, ReplCtx::NONE); // word 7
        let ev = c.fill(addr_of(1), 1, false, false, ReplCtx::NONE).unwrap();
        assert_eq!(ev.used_words, 0b1000_0011);
    }

    #[test]
    fn duplicate_fill_is_merged_not_duplicated() {
        let mut c = small_cache(4, 2);
        c.fill(addr_of(3), 3, false, false, ReplCtx::NONE);
        assert!(c.fill(addr_of(3), 3, true, false, ReplCtx::NONE).is_none());
        assert_eq!(c.occupancy(), 1);
        // The merged write must have made it dirty.
        let ev = loop {
            // force eviction of block 3 by filling its set
            if let Some(ev) = c.fill(addr_of(7), 7, false, false, ReplCtx::NONE) {
                break ev;
            }
            if let Some(ev) = c.fill(addr_of(11), 11, false, false, ReplCtx::NONE) {
                break ev;
            }
        };
        assert_eq!(ev.block, 3);
        assert!(ev.dirty);
    }

    #[test]
    fn mark_dirty_only_when_present() {
        let mut c = small_cache(4, 2);
        assert!(!c.mark_dirty(9));
        c.fill(addr_of(9), 9, false, false, ReplCtx::NONE);
        assert!(c.mark_dirty(9));
    }
}
