//! Generic set-associative, write-back cache with pluggable replacement.
//!
//! The cache tracks tags and state only (the simulator never moves data);
//! per-word usage bits are kept for the Line Distillation baseline.

use crate::block::word_in_block;
use crate::config::CacheConfig;
use crate::replacement::{ReplCtx, ReplState};
use crate::stats::CacheStats;

/// Tag sentinel for an invalid (empty) way. Blocks are `addr >> BLOCK_BITS`
/// so a real tag never reaches `u64::MAX`; using a sentinel instead of a
/// separate `valid` bitmap keeps the hit lookup to a single array scan.
const INVALID_TAG: u64 = u64::MAX;

/// Per-line flag: line holds data newer than the level below.
const META_DIRTY: u8 = 1 << 0;
/// Per-line flag: line was filled by a prefetcher and not yet demanded.
const META_PREFETCHED: u8 = 1 << 1;

/// A dirty line pushed out of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    pub block: u64,
    pub dirty: bool,
    /// Words demanded while the line was resident (Line Distillation).
    pub used_words: u8,
}

/// Result of a demand lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    Hit,
    Miss,
}

/// Set-associative cache.
///
/// Line state is stored struct-of-arrays: parallel flat `tags`/`meta`/`used`
/// vectors indexed by `set * ways + way`. The hit path only ever touches
/// `tags` (a contiguous `u64` scan the compiler unrolls/vectorises), and
/// replacement state is enum-dispatched ([`ReplState`]) so its hooks inline
/// instead of going through a vtable.
pub struct Cache {
    sets: usize,
    ways: usize,
    /// Set-index mask (`sets` is validated to be a power of two).
    set_mask: usize,
    /// Per-way resident block, [`INVALID_TAG`] when empty.
    tags: Vec<u64>,
    /// Per-way `META_*` flag bits.
    meta: Vec<u8>,
    /// Per-way bitmap of 8-byte words touched by demand accesses.
    used: Vec<u8>,
    repl: ReplState,
    pub stats: CacheStats,
    /// Lookup latency in core cycles.
    pub latency: u64,
    /// Monotonic access position (feeds T-OPT's ReplCtx). Advances on
    /// every demand access *and* on every fill, so back-to-back fills
    /// never share a replacement timestamp. 64-bit: never wraps.
    pos: u64,
}

impl Cache {
    pub fn new(cfg: &CacheConfig) -> Self {
        assert!(
            cfg.sets.is_power_of_two(),
            "cache sets must be a power of two for mask indexing (got {}); \
             validate configs with CacheConfig::validate",
            cfg.sets
        );
        Cache {
            sets: cfg.sets,
            ways: cfg.ways,
            set_mask: cfg.sets - 1,
            tags: vec![INVALID_TAG; cfg.sets * cfg.ways],
            meta: vec![0; cfg.sets * cfg.ways],
            used: vec![0; cfg.sets * cfg.ways],
            repl: ReplState::new(cfg.replacement, cfg.sets, cfg.ways),
            stats: CacheStats::default(),
            latency: cfg.latency,
            pos: 0,
        }
    }

    pub fn sets(&self) -> usize {
        self.sets
    }

    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_of(&self, block: u64) -> usize {
        // Sets are validated to be a power of two, so the mask is exact
        // (and avoids a hardware divide on the hot path).
        (block as usize) & self.set_mask
    }

    #[inline]
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        // Invalid ways hold INVALID_TAG, which no real block equals, so a
        // plain tag compare doubles as the validity check.
        let base = set * self.ways;
        self.tags[base..base + self.ways].iter().position(|&t| t == tag)
    }

    /// Current access-position counter.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Demand access. Updates replacement state, dirty and word-usage bits.
    /// Does *not* fill on miss; the caller drives the fill path so that
    /// MSHR and lower-level timing can be modelled.
    pub fn access(&mut self, addr: u64, block: u64, is_write: bool, ctx: ReplCtx) -> LookupResult {
        self.pos += 1;
        let set = self.set_of(block);
        match self.find(set, block) {
            Some(way) => {
                self.stats.record_hit();
                let idx = set * self.ways + way;
                let m = self.meta[idx];
                if m & META_PREFETCHED != 0 {
                    self.stats.prefetch_hits += 1;
                }
                // Clears the prefetched bit, preserves dirty, ORs in the
                // write's dirty — branchlessly.
                self.meta[idx] = (m & !META_PREFETCHED) | (u8::from(is_write) * META_DIRTY);
                self.used[idx] |= 1 << word_in_block(addr);
                self.repl.on_hit(set, way, ReplCtx { pos: self.pos, ..ctx });
                LookupResult::Hit
            }
            None => {
                self.stats.record_miss();
                LookupResult::Miss
            }
        }
    }

    /// Fill `block` (after a demand miss or on behalf of a prefetcher).
    /// Returns the eviction the fill displaced, if any.
    pub fn fill(
        &mut self,
        addr: u64,
        block: u64,
        is_write: bool,
        prefetched: bool,
        ctx: ReplCtx,
    ) -> Option<Eviction> {
        let set = self.set_of(block);
        if let Some(way) = self.find(set, block) {
            // Already present (e.g. race between demand fill and prefetch):
            // just merge state.
            let idx = set * self.ways + way;
            self.meta[idx] |= u8::from(is_write) * META_DIRTY;
            if !prefetched {
                self.meta[idx] &= !META_PREFETCHED;
                self.used[idx] |= 1 << word_in_block(addr);
            }
            return None;
        }
        // Fills advance the position clock too: back-to-back fills
        // (prefetch bursts, MSHR drains) must not share the stale demand
        // position, or age-based policies see them as simultaneous.
        self.pos += 1;
        let base = set * self.ways;
        let (way, evicted) = match self.find(set, INVALID_TAG) {
            Some(w) => (w, None),
            None => {
                let w = self.repl.victim(set);
                let idx = base + w;
                (
                    w,
                    Some(Eviction {
                        block: self.tags[idx],
                        dirty: self.meta[idx] & META_DIRTY != 0,
                        used_words: self.used[idx],
                    }),
                )
            }
        };
        if prefetched {
            self.stats.prefetch_fills += 1;
        } else {
            self.stats.fills += 1;
        }
        let idx = base + way;
        self.tags[idx] = block;
        self.meta[idx] =
            (u8::from(is_write) * META_DIRTY) | (u8::from(prefetched) * META_PREFETCHED);
        self.used[idx] = if prefetched { 0 } else { 1 << word_in_block(addr) };
        self.repl.on_fill(set, way, ReplCtx { pos: self.pos, ..ctx });
        if evicted.is_some() {
            self.stats.writebacks += u64::from(evicted.is_some_and(|e| e.dirty));
        }
        evicted
    }

    /// Check for presence without disturbing any state (coherence probes).
    pub fn probe(&self, block: u64) -> bool {
        self.find(self.set_of(block), block).is_some()
    }

    /// Invalidate `block` if present; returns whether it was dirty.
    pub fn invalidate(&mut self, block: u64) -> Option<bool> {
        let set = self.set_of(block);
        let way = self.find(set, block)?;
        let idx = set * self.ways + way;
        let dirty = self.meta[idx] & META_DIRTY != 0;
        self.tags[idx] = INVALID_TAG;
        self.meta[idx] = 0;
        self.used[idx] = 0;
        self.stats.invalidations += 1;
        Some(dirty)
    }

    /// Mark a resident block dirty (write forwarded into this level).
    pub fn mark_dirty(&mut self, block: u64) -> bool {
        let set = self.set_of(block);
        if let Some(way) = self.find(set, block) {
            self.meta[set * self.ways + way] |= META_DIRTY;
            true
        } else {
            false
        }
    }

    /// Number of currently valid lines (test/debug aid).
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }

    /// Serialize line state, replacement metadata, stats, and the position
    /// clock. Geometry (`sets`/`ways`) is written for validation; latency
    /// and the set mask are config-derived and not stored.
    pub fn save_state(&self, w: &mut simstate::StateSink) {
        w.tag(b"CCH_");
        w.put_usize(self.sets);
        w.put_usize(self.ways);
        w.put_u64s(&self.tags);
        w.put_bytes(&self.meta);
        w.put_bytes(&self.used);
        self.repl.save_state(w);
        self.stats.save_state(w);
        w.put_u64(self.pos);
    }

    /// Restore state saved by [`Self::save_state`] into a cache of the same
    /// geometry and replacement policy.
    pub fn load_state(
        &mut self,
        r: &mut simstate::StateSource,
    ) -> Result<(), simstate::StateError> {
        r.expect_tag(b"CCH_")?;
        let sets = r.get_usize()?;
        if sets != self.sets {
            return Err(simstate::StateError::ShapeMismatch {
                what: "cache sets",
                expected: self.sets as u64,
                found: sets as u64,
            });
        }
        let ways = r.get_usize()?;
        if ways != self.ways {
            return Err(simstate::StateError::ShapeMismatch {
                what: "cache ways",
                expected: self.ways as u64,
                found: ways as u64,
            });
        }
        r.read_u64s_into("cache tags", &mut self.tags)?;
        r.read_bytes_into("cache meta", &mut self.meta)?;
        r.read_bytes_into("cache used", &mut self.used)?;
        self.repl.load_state(r)?;
        self.stats.load_state(r)?;
        self.pos = r.get_u64()?;
        Ok(())
    }
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("sets", &self.sets)
            .field("ways", &self.ways)
            .field("latency", &self.latency)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrefetcherKind, ReplacementKind};

    fn small_cache(sets: usize, ways: usize) -> Cache {
        Cache::new(&CacheConfig {
            sets,
            ways,
            latency: 1,
            mshr_entries: 4,
            replacement: ReplacementKind::Lru,
            prefetcher: PrefetcherKind::None,
        })
    }

    fn addr_of(block: u64) -> u64 {
        block << crate::block::BLOCK_BITS
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache(4, 2);
        let b = 100;
        assert_eq!(c.access(addr_of(b), b, false, ReplCtx::NONE), LookupResult::Miss);
        assert!(c.fill(addr_of(b), b, false, false, ReplCtx::NONE).is_none());
        assert_eq!(c.access(addr_of(b), b, false, ReplCtx::NONE), LookupResult::Hit);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.fills, 1);
    }

    #[test]
    fn conflict_eviction_in_same_set() {
        let mut c = small_cache(4, 2);
        // Blocks 0, 4, 8 all map to set 0 in a 4-set cache.
        for b in [0u64, 4, 8] {
            c.access(addr_of(b), b, false, ReplCtx::NONE);
            c.fill(addr_of(b), b, false, false, ReplCtx::NONE);
        }
        // Block 0 was LRU and must have been evicted.
        assert!(!c.probe(0));
        assert!(c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn write_makes_dirty_and_eviction_reports_it() {
        let mut c = small_cache(1, 1);
        c.access(addr_of(7), 7, true, ReplCtx::NONE);
        c.fill(addr_of(7), 7, true, false, ReplCtx::NONE);
        let ev = c.fill(addr_of(9), 9, false, false, ReplCtx::NONE).unwrap();
        assert_eq!(ev.block, 7);
        assert!(ev.dirty);
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn clean_eviction_not_a_writeback() {
        let mut c = small_cache(1, 1);
        c.fill(addr_of(7), 7, false, false, ReplCtx::NONE);
        let ev = c.fill(addr_of(9), 9, false, false, ReplCtx::NONE).unwrap();
        assert!(!ev.dirty);
        assert_eq!(c.stats.writebacks, 0);
    }

    #[test]
    fn prefetch_fill_then_demand_hit_counts_prefetch_hit() {
        let mut c = small_cache(4, 2);
        c.fill(addr_of(3), 3, false, true, ReplCtx::NONE);
        assert_eq!(c.stats.prefetch_fills, 1);
        assert_eq!(c.access(addr_of(3), 3, false, ReplCtx::NONE), LookupResult::Hit);
        assert_eq!(c.stats.prefetch_hits, 1);
        // Second hit no longer counts as a prefetch hit.
        c.access(addr_of(3), 3, false, ReplCtx::NONE);
        assert_eq!(c.stats.prefetch_hits, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache(4, 2);
        c.fill(addr_of(5), 5, true, false, ReplCtx::NONE);
        assert_eq!(c.invalidate(5), Some(true));
        assert!(!c.probe(5));
        assert_eq!(c.invalidate(5), None);
        assert_eq!(c.stats.invalidations, 1);
    }

    #[test]
    fn used_words_accumulate() {
        let mut c = small_cache(1, 1);
        let b = 0u64;
        c.fill(0, b, false, false, ReplCtx::NONE); // word 0
        c.access(8, b, false, ReplCtx::NONE); // word 1
        c.access(56, b, false, ReplCtx::NONE); // word 7
        let ev = c.fill(addr_of(1), 1, false, false, ReplCtx::NONE).unwrap();
        assert_eq!(ev.used_words, 0b1000_0011);
    }

    #[test]
    fn duplicate_fill_is_merged_not_duplicated() {
        let mut c = small_cache(4, 2);
        c.fill(addr_of(3), 3, false, false, ReplCtx::NONE);
        assert!(c.fill(addr_of(3), 3, true, false, ReplCtx::NONE).is_none());
        assert_eq!(c.occupancy(), 1);
        // The merged write must have made it dirty.
        let ev = loop {
            // force eviction of block 3 by filling its set
            if let Some(ev) = c.fill(addr_of(7), 7, false, false, ReplCtx::NONE) {
                break ev;
            }
            if let Some(ev) = c.fill(addr_of(11), 11, false, false, ReplCtx::NONE) {
                break ev;
            }
        };
        assert_eq!(ev.block, 3);
        assert!(ev.dirty);
    }

    #[test]
    fn fill_advances_the_position_clock() {
        let mut c = small_cache(4, 2);
        assert_eq!(c.position(), 0);
        c.fill(addr_of(1), 1, false, false, ReplCtx::NONE);
        assert_eq!(c.position(), 1);
        // A merged (already-present) fill is not an insertion: no tick.
        c.fill(addr_of(1), 1, false, false, ReplCtx::NONE);
        assert_eq!(c.position(), 1);
        c.access(addr_of(1), 1, false, ReplCtx::NONE);
        assert_eq!(c.position(), 2);
    }

    #[test]
    fn back_to_back_fills_age_distinctly_under_topt() {
        // Two unhinted fills in a row used to inherit the same stale demand
        // position, so their predicted next uses tied and the victim fell
        // back to the LRU stamp (insertion order). Each fill now gets its
        // own position tick: the *later* fill is predicted farther away and
        // is the one evicted.
        let mut c = Cache::new(&CacheConfig {
            sets: 1,
            ways: 2,
            latency: 1,
            mshr_entries: 4,
            replacement: ReplacementKind::TOpt,
            prefetcher: PrefetcherKind::None,
        });
        c.fill(addr_of(10), 10, false, false, ReplCtx::NONE);
        c.fill(addr_of(20), 20, false, false, ReplCtx::NONE);
        let ev = c.fill(addr_of(30), 30, false, false, ReplCtx::NONE).unwrap();
        assert_eq!(ev.block, 20, "later back-to-back fill must be predicted farther");
        assert!(c.probe(10));
        assert!(!c.probe(20));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_set_count_is_rejected() {
        let _ = small_cache(3, 2);
    }

    #[test]
    fn snapshot_restores_bit_identical_behaviour() {
        for repl in [ReplacementKind::Lru, ReplacementKind::Srrip, ReplacementKind::TOpt] {
            let cfg = CacheConfig {
                sets: 4,
                ways: 2,
                latency: 1,
                mshr_entries: 4,
                replacement: repl,
                prefetcher: PrefetcherKind::None,
            };
            let mut live = Cache::new(&cfg);
            // Mixed warmup: fills, hits, a write, a prefetch, an invalidate.
            for b in [0u64, 4, 8, 3, 7, 3, 0] {
                if live.access(addr_of(b), b, b == 7, ReplCtx::NONE) == LookupResult::Miss {
                    live.fill(addr_of(b), b, b == 7, false, ReplCtx::NONE);
                }
            }
            live.fill(addr_of(12), 12, false, true, ReplCtx::NONE);
            live.invalidate(4);

            let mut w = simstate::StateSink::new();
            live.save_state(&mut w);
            let bytes = w.into_bytes();
            let mut restored = Cache::new(&cfg);
            let mut r = simstate::StateSource::new(&bytes);
            restored.load_state(&mut r).expect("restore");
            r.expect_end().expect("payload fully consumed");

            // Same tail of accesses produces the same observable behaviour
            // (including victim choices, which exercise replacement state).
            for b in [1u64, 5, 9, 13, 1, 3, 12, 8] {
                assert_eq!(
                    live.access(addr_of(b), b, false, ReplCtx::NONE),
                    restored.access(addr_of(b), b, false, ReplCtx::NONE),
                    "{repl:?}: divergent lookup for block {b}"
                );
                assert_eq!(
                    live.fill(addr_of(b), b, false, false, ReplCtx::NONE),
                    restored.fill(addr_of(b), b, false, false, ReplCtx::NONE),
                    "{repl:?}: divergent eviction for block {b}"
                );
            }
            assert_eq!(live.stats, restored.stats);
            assert_eq!(live.position(), restored.position());
        }
    }

    #[test]
    fn snapshot_rejects_wrong_geometry_and_policy() {
        let mut src = small_cache(4, 2);
        src.fill(addr_of(1), 1, false, false, ReplCtx::NONE);
        let mut w = simstate::StateSink::new();
        src.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut wrong_shape = small_cache(8, 2);
        assert!(matches!(
            wrong_shape.load_state(&mut simstate::StateSource::new(&bytes)),
            Err(simstate::StateError::ShapeMismatch { .. })
        ));

        let mut wrong_policy = Cache::new(&CacheConfig {
            sets: 4,
            ways: 2,
            latency: 1,
            mshr_entries: 4,
            replacement: ReplacementKind::TOpt,
            prefetcher: PrefetcherKind::None,
        });
        assert!(matches!(
            wrong_policy.load_state(&mut simstate::StateSource::new(&bytes)),
            Err(simstate::StateError::BadValue { .. })
        ));
    }

    #[test]
    fn mark_dirty_only_when_present() {
        let mut c = small_cache(4, 2);
        assert!(!c.mark_dirty(9));
        c.fill(addr_of(9), 9, false, false, ReplCtx::NONE);
        assert!(c.mark_dirty(9));
    }
}
