//! Line Distillation cache (Qureshi et al., HPCA 2007) — the "Distill
//! Cache" comparison point of Fig. 7/14.
//!
//! The cache is split into a Line-Organized Cache (LOC) holding whole
//! blocks and a Word-Organized Cache (WOC) holding individual 8-byte words.
//! When the LOC evicts a line, the words that were actually referenced are
//! *distilled* into the WOC, so a later access to a hot word can hit even
//! though the rest of the line is gone. The split is capacity-neutral
//! against the baseline LLC: `ways` total ways per set are divided into
//! `loc_ways` line ways and `(ways - loc_ways) * WORDS_PER_BLOCK` word
//! entries.

use crate::block::{word_in_block, WORDS_PER_BLOCK};
use crate::cache::{Cache, Eviction, LookupResult};
use crate::config::CacheConfig;
use crate::replacement::ReplCtx;
use crate::stats::CacheStats;

/// Maximum used words for a dying line to be worth distilling; lines with
/// more used words than this are simply dropped (they were well-utilized,
/// so distillation saves nothing).
const DISTILL_MAX_WORDS: u32 = 4;

/// Sentinel key for an empty/invalidated WOC slot. Real keys are
/// `block << 3 | word` with block addresses far below 2^58, so the
/// sentinel can never collide.
const INVALID_KEY: u64 = u64::MAX;

#[inline]
fn woc_key(block: u64, word: usize) -> u64 {
    debug_assert!(word < WORDS_PER_BLOCK);
    (block << 3) | word as u64
}

/// Result of a Distill-cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistillResult {
    LineHit,
    WordHit,
    Miss,
}

/// The distilled LLC: LOC + WOC.
///
/// WOC entries live in two flat parallel arrays: packed `(block, word)`
/// keys and LRU stamps. The lookup scan compares one word per entry
/// instead of unpacking a struct, and an invalid slot is just the
/// sentinel key with stamp 0 (which the insert scan already treats as
/// infinitely old).
pub struct DistillCache {
    loc: Cache,
    sets: usize,
    woc_per_set: usize,
    woc_keys: Vec<u64>,
    woc_stamps: Vec<u64>,
    clock: u64,
    /// Demand hits served by the WOC.
    pub woc_hits: u64,
    pub latency: u64,
}

impl DistillCache {
    /// Build from the baseline LLC geometry, dedicating `loc_ways` of the
    /// original ways to lines and the remainder to words.
    pub fn new(llc: &CacheConfig, loc_ways: usize) -> Self {
        assert!(loc_ways > 0 && loc_ways < llc.ways);
        let woc_per_set = (llc.ways - loc_ways) * WORDS_PER_BLOCK;
        let loc_cfg = CacheConfig { ways: loc_ways, ..*llc };
        DistillCache {
            loc: Cache::new(&loc_cfg),
            sets: llc.sets,
            woc_per_set,
            woc_keys: vec![INVALID_KEY; llc.sets * woc_per_set],
            woc_stamps: vec![0; llc.sets * woc_per_set],
            clock: 0,
            woc_hits: 0,
            latency: llc.latency,
        }
    }

    fn set_of(&self, block: u64) -> usize {
        // Power-of-two set counts are enforced by the inner LOC cache
        // (same geometry), so the mask is exact.
        (block as usize) & (self.sets - 1)
    }

    fn woc_lookup(&mut self, block: u64, word: usize) -> bool {
        self.clock += 1;
        let base = self.set_of(block) * self.woc_per_set;
        let key = woc_key(block, word);
        let set = &self.woc_keys[base..base + self.woc_per_set];
        if let Some(i) = set.iter().position(|&k| k == key) {
            self.woc_stamps[base + i] = self.clock;
            return true;
        }
        false
    }

    fn woc_insert(&mut self, block: u64, word: u8) {
        self.clock += 1;
        let base = self.set_of(block) * self.woc_per_set;
        let key = woc_key(block, usize::from(word));
        // Reuse an existing entry for the same (block, word) or take the
        // LRU slot (invalid slots carry stamp 0: infinitely old).
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for i in 0..self.woc_per_set {
            if self.woc_keys[base + i] == key {
                victim = i;
                break;
            }
            let stamp = self.woc_stamps[base + i];
            if stamp < oldest {
                oldest = stamp;
                victim = i;
            }
        }
        self.woc_keys[base + victim] = key;
        self.woc_stamps[base + victim] = self.clock;
    }

    /// Distill the used words of an evicted line into the WOC.
    fn distill(&mut self, ev: &Eviction) {
        let used = ev.used_words.count_ones();
        if used == 0 || used > DISTILL_MAX_WORDS {
            return;
        }
        for w in 0..WORDS_PER_BLOCK as u8 {
            if ev.used_words & (1 << w) != 0 {
                self.woc_insert(ev.block, w);
            }
        }
    }

    /// Demand access.
    pub fn access(&mut self, addr: u64, block: u64, is_write: bool, ctx: ReplCtx) -> DistillResult {
        match self.loc.access(addr, block, is_write, ctx) {
            LookupResult::Hit => DistillResult::LineHit,
            LookupResult::Miss => {
                if !is_write && self.woc_lookup(block, word_in_block(addr)) {
                    // A word hit still counts as a hit at this level; fix up
                    // the pessimistic miss the LOC recorded.
                    self.loc.stats.misses -= 1;
                    self.loc.stats.hits += 1;
                    self.woc_hits += 1;
                    DistillResult::WordHit
                } else {
                    DistillResult::Miss
                }
            }
        }
    }

    /// Fill a line into the LOC, distilling any victim.
    pub fn fill(
        &mut self,
        addr: u64,
        block: u64,
        is_write: bool,
        ctx: ReplCtx,
    ) -> Option<Eviction> {
        let ev = self.loc.fill(addr, block, is_write, false, ctx);
        if let Some(e) = &ev {
            self.distill(e);
        }
        ev
    }

    pub fn probe(&self, block: u64) -> bool {
        self.loc.probe(block)
    }

    pub fn invalidate(&mut self, block: u64) -> Option<bool> {
        let base = self.set_of(block) * self.woc_per_set;
        for i in 0..self.woc_per_set {
            if self.woc_keys[base + i] >> 3 == block {
                self.woc_keys[base + i] = INVALID_KEY;
                // Stamp 0 restores the "infinitely old" ordering the
                // insert scan expects from an empty slot.
                self.woc_stamps[base + i] = 0;
            }
        }
        self.loc.invalidate(block)
    }

    pub fn mark_dirty(&mut self, block: u64) -> bool {
        self.loc.mark_dirty(block)
    }

    pub fn stats(&self) -> &CacheStats {
        &self.loc.stats
    }

    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.loc.stats
    }

    pub fn position(&self) -> u64 {
        self.loc.position()
    }

    /// Serialize the LOC plus the WOC arrays, clock, and word-hit counter.
    pub fn save_state(&self, w: &mut simstate::StateSink) {
        w.tag(b"DST_");
        self.loc.save_state(w);
        w.put_usize(self.woc_per_set);
        w.put_u64s(&self.woc_keys);
        w.put_u64s(&self.woc_stamps);
        w.put_u64(self.clock);
        w.put_u64(self.woc_hits);
    }

    /// Restore state saved by [`Self::save_state`] into a cache of the same
    /// LOC/WOC split.
    pub fn load_state(
        &mut self,
        r: &mut simstate::StateSource,
    ) -> Result<(), simstate::StateError> {
        r.expect_tag(b"DST_")?;
        self.loc.load_state(r)?;
        let woc_per_set = r.get_usize()?;
        if woc_per_set != self.woc_per_set {
            return Err(simstate::StateError::ShapeMismatch {
                what: "distill woc_per_set",
                expected: self.woc_per_set as u64,
                found: woc_per_set as u64,
            });
        }
        r.read_u64s_into("distill woc_keys", &mut self.woc_keys)?;
        r.read_u64s_into("distill woc_stamps", &mut self.woc_stamps)?;
        self.clock = r.get_u64()?;
        self.woc_hits = r.get_u64()?;
        Ok(())
    }
}

impl std::fmt::Debug for DistillCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistillCache")
            .field("sets", &self.sets)
            .field("woc_per_set", &self.woc_per_set)
            .field("woc_hits", &self.woc_hits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BLOCK_BITS;
    use crate::config::{PrefetcherKind, ReplacementKind};

    fn cfg(sets: usize, ways: usize) -> CacheConfig {
        CacheConfig {
            sets,
            ways,
            latency: 10,
            mshr_entries: 4,
            replacement: ReplacementKind::Lru,
            prefetcher: PrefetcherKind::None,
        }
    }

    fn addr_of(block: u64, word: u64) -> u64 {
        (block << BLOCK_BITS) + word * 8
    }

    #[test]
    fn line_hit_after_fill() {
        let mut d = DistillCache::new(&cfg(4, 4), 2);
        d.access(addr_of(1, 0), 1, false, ReplCtx::NONE);
        d.fill(addr_of(1, 0), 1, false, ReplCtx::NONE);
        assert_eq!(d.access(addr_of(1, 0), 1, false, ReplCtx::NONE), DistillResult::LineHit);
    }

    #[test]
    fn evicted_used_word_hits_in_woc() {
        let mut d = DistillCache::new(&cfg(1, 3), 2);
        // Fill block 1, touch word 3, then evict it by filling 2 more lines.
        d.fill(addr_of(1, 3), 1, false, ReplCtx::NONE);
        d.fill(addr_of(2, 0), 2, false, ReplCtx::NONE);
        d.fill(addr_of(3, 0), 3, false, ReplCtx::NONE); // evicts block 1
        assert!(!d.probe(1));
        // The used word (3) was distilled; an access to it hits the WOC.
        assert_eq!(d.access(addr_of(1, 3), 1, false, ReplCtx::NONE), DistillResult::WordHit);
        assert_eq!(d.woc_hits, 1);
        // A different word of the same line misses.
        assert_eq!(d.access(addr_of(1, 5), 1, false, ReplCtx::NONE), DistillResult::Miss);
    }

    #[test]
    fn heavily_used_lines_not_distilled() {
        let mut d = DistillCache::new(&cfg(1, 3), 2);
        d.fill(addr_of(1, 0), 1, false, ReplCtx::NONE);
        for w in 1..8 {
            d.access(addr_of(1, w), 1, false, ReplCtx::NONE);
        }
        d.fill(addr_of(2, 0), 2, false, ReplCtx::NONE);
        d.fill(addr_of(3, 0), 3, false, ReplCtx::NONE); // evicts block 1, 8 used words
        assert_eq!(d.access(addr_of(1, 0), 1, false, ReplCtx::NONE), DistillResult::Miss);
    }

    #[test]
    fn invalidate_clears_woc_words_too() {
        let mut d = DistillCache::new(&cfg(1, 3), 2);
        d.fill(addr_of(1, 2), 1, false, ReplCtx::NONE);
        d.fill(addr_of(2, 0), 2, false, ReplCtx::NONE);
        d.fill(addr_of(3, 0), 3, false, ReplCtx::NONE);
        // Word 2 of block 1 is in the WOC now; invalidation must remove it.
        d.invalidate(1);
        assert_eq!(d.access(addr_of(1, 2), 1, false, ReplCtx::NONE), DistillResult::Miss);
    }

    #[test]
    fn woc_word_hit_counts_as_level_hit() {
        let mut d = DistillCache::new(&cfg(1, 3), 2);
        d.fill(addr_of(1, 3), 1, false, ReplCtx::NONE);
        d.fill(addr_of(2, 0), 2, false, ReplCtx::NONE);
        d.fill(addr_of(3, 0), 3, false, ReplCtx::NONE);
        let misses_before = d.stats().misses;
        d.access(addr_of(1, 3), 1, false, ReplCtx::NONE);
        assert_eq!(d.stats().misses, misses_before);
    }
}
