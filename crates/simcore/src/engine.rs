//! Single-core simulation engine: drives a [`MemorySystem`] with an
//! instruction stream through the ROB timing model, with warmup and
//! measurement windows (the SimPoint-style methodology of Section IV-C).

use crate::block::block_of;
use crate::hierarchy::{MemorySystem, ServedBy};
use crate::rob::RobModel;
use crate::stats::{CacheStats, HierStats, SimResult, StrideProfile, StrideProfiler};
use crate::trace::{CompactTrace, MemRef, Tracer};
use simtel::{
    DramDelta, EventKind, ExtraCounters, LevelDelta, LpDelta, StallBuckets, StallTag,
    TelemetryHandle, TelemetryInterval,
};

/// Warmup/measurement window lengths, in instructions.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    pub warmup: u64,
    pub measure: u64,
}

impl Window {
    pub fn new(warmup: u64, measure: u64) -> Self {
        Window { warmup, measure }
    }

    pub fn total(&self) -> u64 {
        self.warmup + self.measure
    }
}

/// Watchdog ceilings for one simulation run. All limits are deterministic
/// functions of simulated state (cycles, trace events) — never wall-clock —
/// so a budgeted run is exactly reproducible.
///
/// A run that crosses a ceiling stops consuming input and is flagged
/// [`Engine::timed_out`]; [`Engine::finish`] still returns the partial
/// result, so the sweep layer can record a graceful `timed_out` outcome
/// instead of hanging a shard on a pathological configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Ceiling on total simulated cycles (warmup + measurement).
    pub max_cycles: Option<u64>,
    /// Ceiling on memory events consumed from the trace.
    pub max_events: Option<u64>,
}

impl Budget {
    /// No ceilings (the default).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Cycle ceiling only.
    pub fn cycles(max: u64) -> Self {
        Budget { max_cycles: Some(max), max_events: None }
    }

    /// Memory-event ceiling only.
    pub fn events(max: u64) -> Self {
        Budget { max_cycles: None, max_events: Some(max) }
    }

    pub fn is_unlimited(&self) -> bool {
        self.max_cycles.is_none() && self.max_events.is_none()
    }
}

/// Rolling baseline behind interval emission: the cumulative counters as
/// of the last snapshot, so each interval is an exact delta. Reset at the
/// warmup/measurement boundary so intervals cover only the window the
/// final [`SimResult`] reports — interval sums reconcile with it exactly.
/// Shared with [`crate::multicore`], which keeps one per core.
#[derive(Default)]
pub(crate) struct TelSnap {
    pub(crate) index: u64,
    pub(crate) last_cycle: u64,
    pub(crate) prev_instrs: u64,
    /// Measured-instruction count that triggers the next snapshot
    /// (0 while telemetry is disabled — the hot-path guard).
    pub(crate) next_instrs: u64,
    pub(crate) prev_stats: HierStats,
    pub(crate) prev_extra: ExtraCounters,
    pub(crate) prev_stalls: StallBuckets,
}

impl TelSnap {
    /// Anchor the baseline at the start of a measurement window.
    pub(crate) fn arm(
        &mut self,
        every: u64,
        cycle: u64,
        stats: HierStats,
        extra: ExtraCounters,
        stalls: StallBuckets,
    ) {
        *self = TelSnap {
            index: 0,
            last_cycle: cycle,
            prev_instrs: 0,
            next_instrs: every,
            prev_stats: stats,
            prev_extra: extra,
            prev_stalls: stalls,
        };
    }

    /// Diff the cumulative counters against the baseline into one interval
    /// record, then roll the baseline forward to `end_cycle`/`measured`.
    pub(crate) fn build(
        &mut self,
        core: u32,
        end_cycle: u64,
        measured: u64,
        stats: HierStats,
        extra: ExtraCounters,
        stalls_now: StallBuckets,
    ) -> TelemetryInterval {
        fn level(now: &CacheStats, prev: &CacheStats) -> LevelDelta {
            LevelDelta {
                accesses: now.accesses.saturating_sub(prev.accesses),
                hits: now.hits.saturating_sub(prev.hits),
                misses: now.misses.saturating_sub(prev.misses),
            }
        }
        let mut stalls = stalls_now.delta_since(&self.prev_stalls);
        stalls.busy = end_cycle.saturating_sub(self.last_cycle).saturating_sub(stalls.attributed());
        let interval = TelemetryInterval {
            index: self.index,
            core,
            start_cycle: self.last_cycle,
            end_cycle,
            instructions: measured.saturating_sub(self.prev_instrs),
            l1d: level(&stats.l1d, &self.prev_stats.l1d),
            sdc: level(&stats.sdc, &self.prev_stats.sdc),
            l2c: level(&stats.l2c, &self.prev_stats.l2c),
            llc: level(&stats.llc, &self.prev_stats.llc),
            dram: DramDelta {
                reads: stats.dram.reads.saturating_sub(self.prev_stats.dram.reads),
                writes: stats.dram.writes.saturating_sub(self.prev_stats.dram.writes),
                row_hits: stats.dram.row_hits.saturating_sub(self.prev_stats.dram.row_hits),
                row_misses: stats.dram.row_misses.saturating_sub(self.prev_stats.dram.row_misses),
                row_conflicts: stats
                    .dram
                    .row_conflicts
                    .saturating_sub(self.prev_stats.dram.row_conflicts),
            },
            mshr_high_water: extra.mshr_high_water,
            lp: LpDelta {
                lookups: extra.lp_lookups.saturating_sub(self.prev_extra.lp_lookups),
                sdc_routes: extra.lp_sdc_routes.saturating_sub(self.prev_extra.lp_sdc_routes),
                hierarchy_routes: extra
                    .lp_hierarchy_routes
                    .saturating_sub(self.prev_extra.lp_hierarchy_routes),
            },
            sdc_bypasses: extra.sdc_bypasses.saturating_sub(self.prev_extra.sdc_bypasses),
            stalls,
        };
        self.index += 1;
        self.last_cycle = end_cycle;
        self.prev_instrs = measured;
        self.prev_stats = stats;
        self.prev_extra = extra;
        self.prev_stalls = stalls_now;
        interval
    }
}

fn tel_level(s: ServedBy) -> simtel::Level {
    match s {
        ServedBy::L1d => simtel::Level::L1d,
        ServedBy::Sdc => simtel::Level::Sdc,
        ServedBy::L2c => simtel::Level::L2c,
        ServedBy::Llc => simtel::Level::Llc,
        ServedBy::Dram => simtel::Level::Dram,
    }
}

/// The engine: owns the core model and the memory system under test.
///
/// Implements [`Tracer`], so an instrumented kernel can stream into it
/// directly, and also replays pre-recorded [`CompactTrace`]s (the mode the
/// experiment harness uses so every configuration sees identical input).
pub struct Engine<M: MemorySystem> {
    rob: RobModel,
    pub mem: M,
    window: Window,
    instrs: u64,
    measure_start_cycle: u64,
    in_measurement: bool,
    profiler: Option<StrideProfiler>,
    budget: Budget,
    mem_events: u64,
    timed_out: bool,
    tel: TelemetryHandle,
    tel_snap: TelSnap,
}

impl<M: MemorySystem> Engine<M> {
    pub fn new(mem: M, width: usize, rob_entries: usize, window: Window) -> Self {
        let mut e = Engine {
            rob: RobModel::new(width, rob_entries),
            mem,
            window,
            instrs: 0,
            measure_start_cycle: 0,
            in_measurement: false,
            profiler: None,
            budget: Budget::default(),
            mem_events: 0,
            timed_out: false,
            tel: TelemetryHandle::disabled(),
            tel_snap: TelSnap::default(),
        };
        if window.warmup == 0 {
            e.begin_measurement();
        }
        e
    }

    /// Enable the PC-stride profiler (Fig. 3 instrumentation).
    pub fn enable_stride_profiler(&mut self) {
        self.profiler = Some(StrideProfiler::new());
    }

    /// Arm the runaway-simulation watchdog. See [`Budget`].
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Attach a telemetry sink. Interval snapshots fire every
    /// `tel.interval_instructions()` measured instructions; component
    /// events (DRAM row conflicts, SDC routing) flow through clones of
    /// the same handle. Attach before running — if the measurement
    /// window is already open (zero warmup), the interval baseline is
    /// re-anchored to the current state.
    pub fn attach_telemetry(&mut self, tel: TelemetryHandle) {
        self.mem.attach_telemetry(tel.clone());
        self.tel = tel;
        if self.in_measurement {
            self.reset_tel_baseline();
        }
    }

    fn reset_tel_baseline(&mut self) {
        if !self.tel.enabled() {
            return;
        }
        self.tel_snap.arm(
            self.tel.interval_instructions(),
            self.rob.current_cycle(),
            self.mem.collect_stats(),
            self.mem.telemetry_counters(),
            self.rob.stalls,
        );
    }

    /// Did the run cross a watchdog ceiling? (The partial result from
    /// [`Engine::finish`] is still valid measurement data up to the cut.)
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }

    /// Total simulated cycles so far.
    pub fn current_cycle(&self) -> u64 {
        self.rob.current_cycle()
    }

    fn check_budget(&mut self) {
        if self.timed_out {
            return;
        }
        let cycles_hit = self.budget.max_cycles.is_some_and(|max| self.rob.current_cycle() >= max);
        let events_hit = self.budget.max_events.is_some_and(|max| self.mem_events >= max);
        if cycles_hit || events_hit {
            self.timed_out = true;
            self.tel.event(self.rob.current_cycle(), || EventKind::WatchdogTick);
        }
    }

    fn begin_measurement(&mut self) {
        self.in_measurement = true;
        self.measure_start_cycle = self.rob.current_cycle();
        self.mem.reset_stats();
        if let Some(p) = &mut self.profiler {
            *p = StrideProfiler::new();
        }
        self.reset_tel_baseline();
    }

    fn note_instructions(&mut self, n: u64) {
        let before = self.instrs;
        self.instrs += n;
        if !self.in_measurement && before < self.window.warmup && self.instrs >= self.window.warmup
        {
            self.begin_measurement();
        }
        // `next_instrs` is 0 unless a sink is attached, so the disabled
        // path pays exactly one compare here.
        if self.tel_snap.next_instrs != 0 && self.in_measurement {
            self.maybe_snapshot();
        }
    }

    /// Emit at most one interval per call. The cadence is instruction
    /// driven, but an interval must also advance the cycle clock so
    /// `end_cycle` stays strictly monotone across snapshots.
    // simlint::allow(panic-path): the snapshot interval is nonzero whenever windowed measurement is enabled
    fn maybe_snapshot(&mut self) {
        let measured = self.instrs.saturating_sub(self.window.warmup);
        if measured < self.tel_snap.next_instrs {
            return;
        }
        let now = self.rob.current_cycle();
        if now <= self.tel_snap.last_cycle {
            return;
        }
        self.emit_interval(now, measured);
        let every = self.tel.interval_instructions().max(1);
        self.tel_snap.next_instrs = (measured / every + 1) * every;
    }

    fn emit_interval(&mut self, end_cycle: u64, measured: u64) {
        let stats = self.mem.collect_stats();
        let extra = self.mem.telemetry_counters();
        let interval = self.tel_snap.build(
            self.tel.core(),
            end_cycle,
            measured,
            stats,
            extra,
            self.rob.stalls,
        );
        self.tel.interval(&interval);
    }

    /// Replay a recorded trace through the engine.
    pub fn replay(&mut self, trace: &CompactTrace) {
        self.replay_from(trace, 0);
    }

    /// Replay `trace` starting at event index `from`. Returns the index of
    /// the next unconsumed event (the `trace_pos` a snapshot taken now
    /// should carry). Event indices are the snapshot resume points: a
    /// restore followed by `replay_from` at the stored position is
    /// bit-identical to the uninterrupted replay.
    pub fn replay_from(&mut self, trace: &CompactTrace, from: usize) -> usize {
        self.replay_span(trace, from, usize::MAX)
    }

    /// Replay at most `max_events` trace events starting at index `from`
    /// (the mid-measurement checkpoint cadence). Returns the index of the
    /// next unconsumed event; stops early when the engine is done.
    pub fn replay_span(&mut self, trace: &CompactTrace, from: usize, max_events: usize) -> usize {
        let mut idx = from;
        for ev in trace.events.iter().skip(from).take(max_events) {
            if self.done() {
                break;
            }
            if ev.is_mem() {
                self.mem(ev.as_mem_ref());
            } else {
                self.bubble_n(ev.addr);
            }
            idx += 1;
        }
        idx
    }

    /// Serialize the engine's complete deterministic state: the ROB, the
    /// memory system under test, the window position, and the budget spend
    /// (`mem_events`/`timed_out`). Window geometry is stored for
    /// validation. Deliberately *not* stored (caller configuration or pure
    /// observers, re-attached after restore): the budget ceilings, the
    /// telemetry sink, and the stride profiler.
    pub fn save_state(&self, w: &mut simstate::StateSink) {
        w.tag(b"ENG_");
        w.put_u64(self.window.warmup);
        w.put_u64(self.window.measure);
        self.rob.save_state(w);
        self.mem.save_state(w);
        w.put_u64(self.instrs);
        w.put_u64(self.measure_start_cycle);
        w.put_bool(self.in_measurement);
        w.put_u64(self.mem_events);
        w.put_bool(self.timed_out);
    }

    /// Restore state saved by [`Engine::save_state`] into an engine built
    /// with the same configuration and window. The telemetry interval
    /// baseline is re-anchored to the restored state (intervals emitted
    /// after a restore cover only post-restore execution).
    pub fn load_state(
        &mut self,
        r: &mut simstate::StateSource,
    ) -> Result<(), simstate::StateError> {
        r.expect_tag(b"ENG_")?;
        let warmup = r.get_u64()?;
        if warmup != self.window.warmup {
            return Err(simstate::StateError::ShapeMismatch {
                what: "window warmup",
                expected: self.window.warmup,
                found: warmup,
            });
        }
        let measure = r.get_u64()?;
        if measure != self.window.measure {
            return Err(simstate::StateError::ShapeMismatch {
                what: "window measure",
                expected: self.window.measure,
                found: measure,
            });
        }
        self.rob.load_state(r)?;
        self.mem.load_state(r)?;
        self.instrs = r.get_u64()?;
        self.measure_start_cycle = r.get_u64()?;
        self.in_measurement = r.get_bool()?;
        self.mem_events = r.get_u64()?;
        self.timed_out = r.get_bool()?;
        if self.in_measurement {
            self.reset_tel_baseline();
        }
        Ok(())
    }

    /// One-call snapshot: the serialized payload for an `SSTATEv1`
    /// container.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = simstate::StateSink::new();
        self.save_state(&mut w);
        w.into_bytes()
    }

    /// Restore from a payload produced by [`Engine::snapshot`], requiring
    /// the payload to be fully consumed.
    pub fn restore(&mut self, payload: &[u8]) -> Result<(), simstate::StateError> {
        let mut r = simstate::StateSource::new(payload);
        self.load_state(&mut r)?;
        r.expect_end()
    }

    fn bubble_n(&mut self, n: u64) {
        self.rob.bubbles(n);
        self.note_instructions(n);
        if !self.budget.is_unlimited() {
            self.check_budget();
        }
    }

    /// Finish the run and produce the measurement-window result.
    pub fn finish(mut self) -> SimResult {
        let end = self.rob.drain();
        // Flush the tail interval so per-interval sums reconcile exactly
        // with the final window stats. Draining may not advance the
        // dispatch clock, so the tail is granted at least one cycle.
        if self.tel_snap.next_instrs != 0 && self.in_measurement {
            let measured = self.instrs.saturating_sub(self.window.warmup);
            let tail_is_empty = measured == self.tel_snap.prev_instrs
                && self.mem.collect_stats() == self.tel_snap.prev_stats;
            if !tail_is_empty {
                let end_cycle = end.max(self.tel_snap.last_cycle + 1);
                self.emit_interval(end_cycle, measured);
            }
        }
        let cycles = end.saturating_sub(self.measure_start_cycle).max(1);
        let instructions = if self.in_measurement {
            self.instrs.saturating_sub(self.window.warmup)
        } else {
            // The workload ended inside warmup; fall back to whole-run stats.
            self.instrs
        };
        SimResult { instructions, cycles, stats: self.mem.collect_stats() }
    }

    /// Extract the stride profile (if profiling was enabled).
    pub fn stride_profile(&self) -> Option<StrideProfile> {
        self.profiler.as_ref().map(|p| p.profile.clone())
    }

    pub fn instructions(&self) -> u64 {
        self.instrs
    }
}

impl<M: MemorySystem> Tracer for Engine<M> {
    fn mem(&mut self, r: MemRef) {
        if self.done() {
            return;
        }
        let d = self.rob.dispatch_slot();
        let outcome = self.mem.access(&r, d);
        // Stores retire through the write buffer: they do not block the ROB
        // for their full memory latency. Loads carry a stall tag naming
        // what they wait on, so a later dispatch stall behind them can be
        // attributed (MSHR pressure outranks the serving level: the delay
        // existed before the access even issued).
        let (completion, tag) = if r.is_write {
            (d + 1, StallTag::Core)
        } else if outcome.mshr_stalled {
            (outcome.completion, StallTag::MshrFull)
        } else if outcome.served_by_dram() {
            (outcome.completion, StallTag::Dram)
        } else {
            (outcome.completion, StallTag::Mem)
        };
        self.rob.complete_tagged(completion, tag);
        if self.tel.enabled() && !matches!(outcome.served_by, ServedBy::L1d | ServedBy::Sdc) {
            self.tel.event(completion, || EventKind::CacheMiss {
                served_by: tel_level(outcome.served_by),
            });
        }
        if self.in_measurement {
            if let Some(p) = &mut self.profiler {
                p.observe(r.pc, block_of(r.addr), outcome.served_by_dram());
            }
        }
        self.note_instructions(1);
        self.mem_events += 1;
        if !self.budget.is_unlimited() {
            self.check_budget();
        }
    }

    fn bubble(&mut self, n: u32) {
        if self.done() {
            return;
        }
        self.bubble_n(u64::from(n));
    }

    fn done(&self) -> bool {
        self.timed_out || self.instrs >= self.window.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrefetcherKind, SystemConfig};
    use crate::hierarchy::BaselineHierarchy;
    use crate::trace::RecordingTracer;

    fn engine(window: Window) -> Engine<BaselineHierarchy> {
        let mut cfg = SystemConfig::baseline(1);
        cfg.l1d.prefetcher = PrefetcherKind::None;
        cfg.l2c.prefetcher = PrefetcherKind::None;
        Engine::new(BaselineHierarchy::new(&cfg), cfg.core.width, cfg.core.rob_entries, window)
    }

    #[test]
    fn pure_bubbles_run_at_width_ipc() {
        let mut e = engine(Window::new(0, 100_000));
        e.bubble_n(100_000);
        let r = e.finish();
        assert!((r.ipc() - 4.0).abs() < 0.2, "ipc = {}", r.ipc());
    }

    #[test]
    fn hot_loop_is_fast_cold_scan_is_slow() {
        // Same instruction count; random large-footprint scan must be slower.
        let mut hot = engine(Window::new(0, 40_000));
        for i in 0..10_000u64 {
            hot.load(1, 0, (i % 16) * 64);
            hot.bubble(3);
        }
        let hot_r = hot.finish();

        let mut cold = engine(Window::new(0, 40_000));
        for i in 0..10_000u64 {
            // Large-stride pattern touching ~10k distinct blocks.
            cold.load(1, 0, (i * 7919) % 1_000_000 * 4096);
            cold.bubble(3);
        }
        let cold_r = cold.finish();
        assert!(cold_r.cycles > 3 * hot_r.cycles, "cold {} vs hot {}", cold_r.cycles, hot_r.cycles);
    }

    #[test]
    fn warmup_stats_are_discarded() {
        let mut e = engine(Window::new(1000, 1000));
        // All misses happen in warmup... (stride of 5 blocks spreads the
        // 400 distinct blocks across the 64 L1 sets).
        for i in 0..400u64 {
            e.load(1, 0, i * 320);
        }
        e.bubble(600); // finish warmup
        assert_eq!(e.instructions(), 1000);
        // ...measurement re-touches the same blocks: hits only.
        for i in 0..400u64 {
            e.load(1, 0, i * 320);
        }
        // L1 (512 lines) holds most of the 400 distinct blocks.
        let r = e.finish();
        assert!(r.l1d_mpki() < 100.0, "l1d mpki = {}", r.l1d_mpki());
        // Only 400 of the 1000 measurement instructions were issued before
        // the workload ended; finish() reports what actually ran.
        assert_eq!(r.instructions, 400);
    }

    #[test]
    fn replay_equals_live_streaming() {
        let mut rec = RecordingTracer::new(10_000);
        let mut i = 0u64;
        while !rec.done() {
            rec.load(1, 0, (i * 12345) % 100_000 * 64);
            rec.bubble(2);
            i += 1;
        }
        let trace = rec.finish();

        let mut live = engine(Window::new(0, 10_000));
        let mut j = 0u64;
        while !live.done() {
            live.load(1, 0, (j * 12345) % 100_000 * 64);
            live.bubble(2);
            j += 1;
        }
        let live_r = live.finish();

        let mut rep = engine(Window::new(0, 10_000));
        rep.replay(&trace);
        let rep_r = rep.finish();

        assert_eq!(live_r.cycles, rep_r.cycles);
        assert_eq!(live_r.stats.l1d.misses, rep_r.stats.l1d.misses);
    }

    #[test]
    fn stride_profiler_collects_during_measurement() {
        let mut e = engine(Window::new(0, 1000));
        e.enable_stride_profiler();
        for i in 0..100u64 {
            e.load(1, 0, i * 64); // stride-1 blocks
        }
        let profile = e.stride_profile().unwrap();
        assert!(profile.accesses[1] > 50);
    }

    #[test]
    fn cycle_budget_cuts_replay_and_flags_timeout() {
        let mut rec = RecordingTracer::new(50_000);
        let mut i = 0u64;
        while !rec.done() {
            rec.load(1, 0, (i * 48_271) % 400_000 * 64); // miss-heavy scan
            rec.bubble(1);
            i += 1;
        }
        let trace = rec.finish();

        let mut free = engine(Window::new(0, 50_000));
        free.replay(&trace);
        assert!(!free.timed_out());
        let full_cycles = free.finish().cycles;

        let mut capped = engine(Window::new(0, 50_000));
        capped.set_budget(Budget::cycles(full_cycles / 4));
        capped.replay(&trace);
        assert!(capped.timed_out(), "budget below the full run must fire");
        let partial = capped.finish();
        assert!(partial.cycles < full_cycles);
        assert!(partial.instructions > 0, "partial result still carries data");
    }

    #[test]
    fn event_budget_counts_memory_events() {
        let mut e = engine(Window::new(0, 10_000));
        e.set_budget(Budget::events(100));
        for i in 0..1000u64 {
            if e.done() {
                break;
            }
            e.load(1, 0, i * 64);
        }
        assert!(e.timed_out());
        assert_eq!(e.instructions(), 100);
    }

    #[test]
    fn budget_runs_are_deterministic() {
        let run = || {
            let mut e = engine(Window::new(0, 20_000));
            e.set_budget(Budget::cycles(5_000));
            let mut i = 0u64;
            while !e.done() {
                e.load(1, 0, (i * 7919) % 100_000 * 64);
                e.bubble(1);
                i += 1;
            }
            let timed = e.timed_out();
            (timed, e.finish())
        };
        let (ta, a) = run();
        let (tb, b) = run();
        assert!(ta && tb);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn unlimited_budget_changes_nothing() {
        let run = |budget: Option<Budget>| {
            let mut e = engine(Window::new(100, 5000));
            if let Some(b) = budget {
                e.set_budget(b);
            }
            let mut i = 0u64;
            while !e.done() {
                e.load(2, 1, (i * 31) % 5000 * 64);
                e.bubble(1);
                i += 1;
            }
            e.finish()
        };
        assert_eq!(run(None), run(Some(Budget::unlimited())));
    }

    fn miss_heavy_run(e: &mut Engine<BaselineHierarchy>) {
        let mut i = 0u64;
        while !e.done() {
            e.load(1, 0, (i * 7919) % 50_000 * 64);
            e.bubble(2);
            i += 1;
        }
    }

    #[test]
    fn warmup_to_measurement_reset_boundary_is_exact() {
        // Cross the boundary mid-burst: 150 loads against a 100-instruction
        // warmup. The window stats must count exactly the 50 measurement
        // loads — none of the warmup, all of the rest.
        let mut e = engine(Window::new(100, 1000));
        for i in 0..150u64 {
            e.load(1, 0, i * 64);
        }
        let r = e.finish();
        assert_eq!(r.instructions, 50);
        assert_eq!(r.stats.l1d.accesses, 50, "stats reset exactly at the boundary");
    }

    #[test]
    fn telemetry_disabled_or_enabled_never_perturbs_results() {
        // The no-op default and an attached collector must all produce the
        // same simulation — telemetry observes, never steers. This pins the
        // zero-cost-when-disabled contract and manifest byte-identity.
        let mut plain = engine(Window::new(200, 20_000));
        miss_heavy_run(&mut plain);
        let plain_r = plain.finish();

        let mut noop = engine(Window::new(200, 20_000));
        noop.attach_telemetry(simtel::TelemetryHandle::disabled());
        miss_heavy_run(&mut noop);
        assert_eq!(plain_r, noop.finish());

        let cfg = simtel::TelemetryConfig { interval_instructions: 1000, ..Default::default() };
        let tel = simtel::TelemetryHandle::collector(&cfg);
        let mut traced = engine(Window::new(200, 20_000));
        traced.attach_telemetry(tel.clone());
        miss_heavy_run(&mut traced);
        assert_eq!(plain_r, traced.finish());
        let out = tel.take_output().unwrap();
        assert!(!out.intervals.is_empty());
    }

    #[test]
    fn interval_sums_reconcile_with_final_stats() {
        let cfg = simtel::TelemetryConfig { interval_instructions: 1000, ..Default::default() };
        let tel = simtel::TelemetryHandle::collector(&cfg);
        let mut e = engine(Window::new(500, 10_000));
        e.attach_telemetry(tel.clone());
        miss_heavy_run(&mut e);
        let r = e.finish();
        let out = tel.take_output().unwrap();
        assert!(out.intervals.len() >= 5, "got {} intervals", out.intervals.len());

        // Strict monotonicity and index contiguity.
        for (i, iv) in out.intervals.iter().enumerate() {
            assert_eq!(iv.index, i as u64);
            assert!(iv.end_cycle > iv.start_cycle, "empty interval at {i}");
            if i > 0 {
                assert_eq!(iv.start_cycle, out.intervals[i - 1].end_cycle);
            }
        }

        // Exact reconciliation with the window result.
        let sum =
            |f: fn(&simtel::TelemetryInterval) -> u64| -> u64 { out.intervals.iter().map(f).sum() };
        assert_eq!(sum(|iv| iv.instructions), r.instructions);
        assert_eq!(sum(|iv| iv.l1d.accesses), r.stats.l1d.accesses);
        assert_eq!(sum(|iv| iv.l1d.misses), r.stats.l1d.misses);
        assert_eq!(sum(|iv| iv.l2c.misses), r.stats.l2c.misses);
        assert_eq!(sum(|iv| iv.llc.misses), r.stats.llc.misses);
        assert_eq!(sum(|iv| iv.dram.reads), r.stats.dram.reads);
        assert_eq!(sum(|iv| iv.dram.row_hits), r.stats.dram.row_hits);

        // Events carry simulated cycles and the miss vocabulary.
        assert!(out.events.iter().any(|ev| matches!(
            ev.kind,
            simtel::EventKind::CacheMiss { served_by: simtel::Level::Dram }
        )));
    }

    #[test]
    fn watchdog_fire_emits_a_tick_event() {
        let cfg = simtel::TelemetryConfig::default();
        let tel = simtel::TelemetryHandle::collector(&cfg);
        let mut e = engine(Window::new(0, 50_000));
        e.attach_telemetry(tel.clone());
        e.set_budget(Budget::events(100));
        miss_heavy_run(&mut e);
        assert!(e.timed_out());
        let _ = e.finish();
        let out = tel.take_output().unwrap();
        let ticks =
            out.events.iter().filter(|ev| ev.kind == simtel::EventKind::WatchdogTick).count();
        assert_eq!(ticks, 1, "the watchdog latches: one tick per run");
    }

    #[test]
    fn determinism_same_input_same_cycles() {
        let run = || {
            let mut e = engine(Window::new(100, 5000));
            let mut i = 0u64;
            while !e.done() {
                e.load(2, 1, (i * 31) % 5000 * 64);
                e.bubble(1);
                i += 1;
            }
            e.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats.llc.misses, b.stats.llc.misses);
    }

    /// Synthetic trace with a mixed access pattern (hot loop + pointer-ish
    /// chases + writes + bubbles) that exercises cache fills, evictions,
    /// prefetcher training, and DRAM row state.
    fn mixed_trace(events: usize) -> CompactTrace {
        let mut rec = RecordingTracer::new(u64::MAX);
        let mut x = 12345u64;
        for i in 0..events as u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match i % 5 {
                0 => rec.mem(MemRef::read(3, 0, (i % 64) * 64)),
                1 => rec.mem(MemRef::read(7, 1, (x >> 20) % 4_000_000 / 64 * 64)),
                2 => rec.mem(MemRef::write(9, 2, (i % 512) * 64)),
                3 => rec.mem(MemRef::read(11, 1, (i * 64) % 2_000_000)),
                _ => rec.bubble(1 + (x % 4) as u32),
            }
        }
        rec.finish()
    }

    /// Engine with prefetchers enabled, to snapshot as much machine state
    /// as the baseline hierarchy can hold.
    fn full_engine(window: Window) -> Engine<BaselineHierarchy> {
        let cfg = SystemConfig::baseline(1);
        Engine::new(BaselineHierarchy::new(&cfg), cfg.core.width, cfg.core.rob_entries, window)
    }

    #[test]
    fn snapshot_restore_then_run_is_bit_identical() {
        let trace = mixed_trace(12_000);
        let window = Window::new(2_000, 6_000);

        let mut straight = full_engine(window);
        straight.replay(&trace);
        let want = straight.finish();
        assert!(want.instructions > 0 && want.cycles > 0);

        // Split at several points: mid-warmup, at the boundary region, and
        // mid-measurement. Each must resume to the same final result.
        for split in [500usize, 1_700, 3_000, 5_500] {
            let mut first = full_engine(window);
            let pos = first.replay_span(&trace, 0, split);
            assert_eq!(pos, split, "trace long enough to hit the split");
            let payload = first.snapshot();

            let mut resumed = full_engine(window);
            resumed.restore(&payload).unwrap();
            assert_eq!(resumed.instructions(), first.instructions());
            resumed.replay_from(&trace, pos);
            let got = resumed.finish();
            assert_eq!(got, want, "diverged after restore at event {split}");
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_cycle_position() {
        let trace = mixed_trace(4_000);
        let mut e = full_engine(Window::new(0, 100_000));
        let pos = e.replay_span(&trace, 0, 2_000);
        let payload = e.snapshot();

        let mut r = full_engine(Window::new(0, 100_000));
        r.restore(&payload).unwrap();
        assert_eq!(r.instructions(), e.instructions());
        // Both continue and land on the same cycle count.
        e.replay_from(&trace, pos);
        r.replay_from(&trace, pos);
        assert_eq!(e.finish(), r.finish());
    }

    #[test]
    fn restore_rejects_wrong_window_and_junk() {
        let mut e = full_engine(Window::new(100, 1_000));
        e.bubble_n(50);
        let payload = e.snapshot();

        let mut other = full_engine(Window::new(200, 1_000));
        assert!(matches!(
            other.restore(&payload),
            Err(simstate::StateError::ShapeMismatch { what: "window warmup", .. })
        ));

        let mut truncated = payload.clone();
        truncated.truncate(payload.len() / 2);
        let mut fresh = full_engine(Window::new(100, 1_000));
        assert!(fresh.restore(&truncated).is_err());
    }
}
