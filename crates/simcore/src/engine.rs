//! Single-core simulation engine: drives a [`MemorySystem`] with an
//! instruction stream through the ROB timing model, with warmup and
//! measurement windows (the SimPoint-style methodology of Section IV-C).

use crate::block::block_of;
use crate::hierarchy::MemorySystem;
use crate::rob::RobModel;
use crate::stats::{SimResult, StrideProfile, StrideProfiler};
use crate::trace::{CompactTrace, MemRef, Tracer};

/// Warmup/measurement window lengths, in instructions.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    pub warmup: u64,
    pub measure: u64,
}

impl Window {
    pub fn new(warmup: u64, measure: u64) -> Self {
        Window { warmup, measure }
    }

    pub fn total(&self) -> u64 {
        self.warmup + self.measure
    }
}

/// Watchdog ceilings for one simulation run. All limits are deterministic
/// functions of simulated state (cycles, trace events) — never wall-clock —
/// so a budgeted run is exactly reproducible.
///
/// A run that crosses a ceiling stops consuming input and is flagged
/// [`Engine::timed_out`]; [`Engine::finish`] still returns the partial
/// result, so the sweep layer can record a graceful `timed_out` outcome
/// instead of hanging a shard on a pathological configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Ceiling on total simulated cycles (warmup + measurement).
    pub max_cycles: Option<u64>,
    /// Ceiling on memory events consumed from the trace.
    pub max_events: Option<u64>,
}

impl Budget {
    /// No ceilings (the default).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Cycle ceiling only.
    pub fn cycles(max: u64) -> Self {
        Budget { max_cycles: Some(max), max_events: None }
    }

    /// Memory-event ceiling only.
    pub fn events(max: u64) -> Self {
        Budget { max_cycles: None, max_events: Some(max) }
    }

    pub fn is_unlimited(&self) -> bool {
        self.max_cycles.is_none() && self.max_events.is_none()
    }
}

/// The engine: owns the core model and the memory system under test.
///
/// Implements [`Tracer`], so an instrumented kernel can stream into it
/// directly, and also replays pre-recorded [`CompactTrace`]s (the mode the
/// experiment harness uses so every configuration sees identical input).
pub struct Engine<M: MemorySystem> {
    rob: RobModel,
    pub mem: M,
    window: Window,
    instrs: u64,
    measure_start_cycle: u64,
    in_measurement: bool,
    profiler: Option<StrideProfiler>,
    budget: Budget,
    mem_events: u64,
    timed_out: bool,
}

impl<M: MemorySystem> Engine<M> {
    pub fn new(mem: M, width: usize, rob_entries: usize, window: Window) -> Self {
        let mut e = Engine {
            rob: RobModel::new(width, rob_entries),
            mem,
            window,
            instrs: 0,
            measure_start_cycle: 0,
            in_measurement: false,
            profiler: None,
            budget: Budget::default(),
            mem_events: 0,
            timed_out: false,
        };
        if window.warmup == 0 {
            e.begin_measurement();
        }
        e
    }

    /// Enable the PC-stride profiler (Fig. 3 instrumentation).
    pub fn enable_stride_profiler(&mut self) {
        self.profiler = Some(StrideProfiler::new());
    }

    /// Arm the runaway-simulation watchdog. See [`Budget`].
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Did the run cross a watchdog ceiling? (The partial result from
    /// [`Engine::finish`] is still valid measurement data up to the cut.)
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }

    /// Total simulated cycles so far.
    pub fn current_cycle(&self) -> u64 {
        self.rob.current_cycle()
    }

    fn check_budget(&mut self) {
        if let Some(max) = self.budget.max_cycles {
            if self.rob.current_cycle() >= max {
                self.timed_out = true;
            }
        }
        if let Some(max) = self.budget.max_events {
            if self.mem_events >= max {
                self.timed_out = true;
            }
        }
    }

    fn begin_measurement(&mut self) {
        self.in_measurement = true;
        self.measure_start_cycle = self.rob.current_cycle();
        self.mem.reset_stats();
        if let Some(p) = &mut self.profiler {
            *p = StrideProfiler::new();
        }
    }

    fn note_instructions(&mut self, n: u64) {
        let before = self.instrs;
        self.instrs += n;
        if !self.in_measurement && before < self.window.warmup && self.instrs >= self.window.warmup
        {
            self.begin_measurement();
        }
    }

    /// Replay a recorded trace through the engine.
    pub fn replay(&mut self, trace: &CompactTrace) {
        for ev in &trace.events {
            if self.done() {
                break;
            }
            if ev.is_mem() {
                self.mem(ev.as_mem_ref());
            } else {
                self.bubble_n(ev.addr);
            }
        }
    }

    fn bubble_n(&mut self, n: u64) {
        self.rob.bubbles(n);
        self.note_instructions(n);
        if !self.budget.is_unlimited() {
            self.check_budget();
        }
    }

    /// Finish the run and produce the measurement-window result.
    pub fn finish(mut self) -> SimResult {
        let end = self.rob.drain();
        let cycles = end.saturating_sub(self.measure_start_cycle).max(1);
        let instructions = if self.in_measurement {
            self.instrs.saturating_sub(self.window.warmup)
        } else {
            // The workload ended inside warmup; fall back to whole-run stats.
            self.instrs
        };
        SimResult { instructions, cycles, stats: self.mem.collect_stats() }
    }

    /// Extract the stride profile (if profiling was enabled).
    pub fn stride_profile(&self) -> Option<StrideProfile> {
        self.profiler.as_ref().map(|p| p.profile.clone())
    }

    pub fn instructions(&self) -> u64 {
        self.instrs
    }
}

impl<M: MemorySystem> Tracer for Engine<M> {
    fn mem(&mut self, r: MemRef) {
        if self.done() {
            return;
        }
        let d = self.rob.dispatch_slot();
        let outcome = self.mem.access(&r, d);
        // Stores retire through the write buffer: they do not block the ROB
        // for their full memory latency.
        let completion = if r.is_write { d + 1 } else { outcome.completion };
        self.rob.complete_at(completion);
        if self.in_measurement {
            if let Some(p) = &mut self.profiler {
                p.observe(r.pc, block_of(r.addr), outcome.served_by_dram());
            }
        }
        self.note_instructions(1);
        self.mem_events += 1;
        if !self.budget.is_unlimited() {
            self.check_budget();
        }
    }

    fn bubble(&mut self, n: u32) {
        if self.done() {
            return;
        }
        self.bubble_n(u64::from(n));
    }

    fn done(&self) -> bool {
        self.timed_out || self.instrs >= self.window.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrefetcherKind, SystemConfig};
    use crate::hierarchy::BaselineHierarchy;
    use crate::trace::RecordingTracer;

    fn engine(window: Window) -> Engine<BaselineHierarchy> {
        let mut cfg = SystemConfig::baseline(1);
        cfg.l1d.prefetcher = PrefetcherKind::None;
        cfg.l2c.prefetcher = PrefetcherKind::None;
        Engine::new(BaselineHierarchy::new(&cfg), cfg.core.width, cfg.core.rob_entries, window)
    }

    #[test]
    fn pure_bubbles_run_at_width_ipc() {
        let mut e = engine(Window::new(0, 100_000));
        e.bubble_n(100_000);
        let r = e.finish();
        assert!((r.ipc() - 4.0).abs() < 0.2, "ipc = {}", r.ipc());
    }

    #[test]
    fn hot_loop_is_fast_cold_scan_is_slow() {
        // Same instruction count; random large-footprint scan must be slower.
        let mut hot = engine(Window::new(0, 40_000));
        for i in 0..10_000u64 {
            hot.load(1, 0, (i % 16) * 64);
            hot.bubble(3);
        }
        let hot_r = hot.finish();

        let mut cold = engine(Window::new(0, 40_000));
        for i in 0..10_000u64 {
            // Large-stride pattern touching ~10k distinct blocks.
            cold.load(1, 0, (i * 7919) % 1_000_000 * 4096);
            cold.bubble(3);
        }
        let cold_r = cold.finish();
        assert!(cold_r.cycles > 3 * hot_r.cycles, "cold {} vs hot {}", cold_r.cycles, hot_r.cycles);
    }

    #[test]
    fn warmup_stats_are_discarded() {
        let mut e = engine(Window::new(1000, 1000));
        // All misses happen in warmup... (stride of 5 blocks spreads the
        // 400 distinct blocks across the 64 L1 sets).
        for i in 0..400u64 {
            e.load(1, 0, i * 320);
        }
        e.bubble(600); // finish warmup
        assert_eq!(e.instructions(), 1000);
        // ...measurement re-touches the same blocks: hits only.
        for i in 0..400u64 {
            e.load(1, 0, i * 320);
        }
        // L1 (512 lines) holds most of the 400 distinct blocks.
        let r = e.finish();
        assert!(r.l1d_mpki() < 100.0, "l1d mpki = {}", r.l1d_mpki());
        // Only 400 of the 1000 measurement instructions were issued before
        // the workload ended; finish() reports what actually ran.
        assert_eq!(r.instructions, 400);
    }

    #[test]
    fn replay_equals_live_streaming() {
        let mut rec = RecordingTracer::new(10_000);
        let mut i = 0u64;
        while !rec.done() {
            rec.load(1, 0, (i * 12345) % 100_000 * 64);
            rec.bubble(2);
            i += 1;
        }
        let trace = rec.finish();

        let mut live = engine(Window::new(0, 10_000));
        let mut j = 0u64;
        while !live.done() {
            live.load(1, 0, (j * 12345) % 100_000 * 64);
            live.bubble(2);
            j += 1;
        }
        let live_r = live.finish();

        let mut rep = engine(Window::new(0, 10_000));
        rep.replay(&trace);
        let rep_r = rep.finish();

        assert_eq!(live_r.cycles, rep_r.cycles);
        assert_eq!(live_r.stats.l1d.misses, rep_r.stats.l1d.misses);
    }

    #[test]
    fn stride_profiler_collects_during_measurement() {
        let mut e = engine(Window::new(0, 1000));
        e.enable_stride_profiler();
        for i in 0..100u64 {
            e.load(1, 0, i * 64); // stride-1 blocks
        }
        let profile = e.stride_profile().unwrap();
        assert!(profile.accesses[1] > 50);
    }

    #[test]
    fn cycle_budget_cuts_replay_and_flags_timeout() {
        let mut rec = RecordingTracer::new(50_000);
        let mut i = 0u64;
        while !rec.done() {
            rec.load(1, 0, (i * 48_271) % 400_000 * 64); // miss-heavy scan
            rec.bubble(1);
            i += 1;
        }
        let trace = rec.finish();

        let mut free = engine(Window::new(0, 50_000));
        free.replay(&trace);
        assert!(!free.timed_out());
        let full_cycles = free.finish().cycles;

        let mut capped = engine(Window::new(0, 50_000));
        capped.set_budget(Budget::cycles(full_cycles / 4));
        capped.replay(&trace);
        assert!(capped.timed_out(), "budget below the full run must fire");
        let partial = capped.finish();
        assert!(partial.cycles < full_cycles);
        assert!(partial.instructions > 0, "partial result still carries data");
    }

    #[test]
    fn event_budget_counts_memory_events() {
        let mut e = engine(Window::new(0, 10_000));
        e.set_budget(Budget::events(100));
        for i in 0..1000u64 {
            if e.done() {
                break;
            }
            e.load(1, 0, i * 64);
        }
        assert!(e.timed_out());
        assert_eq!(e.instructions(), 100);
    }

    #[test]
    fn budget_runs_are_deterministic() {
        let run = || {
            let mut e = engine(Window::new(0, 20_000));
            e.set_budget(Budget::cycles(5_000));
            let mut i = 0u64;
            while !e.done() {
                e.load(1, 0, (i * 7919) % 100_000 * 64);
                e.bubble(1);
                i += 1;
            }
            let timed = e.timed_out();
            (timed, e.finish())
        };
        let (ta, a) = run();
        let (tb, b) = run();
        assert!(ta && tb);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn unlimited_budget_changes_nothing() {
        let run = |budget: Option<Budget>| {
            let mut e = engine(Window::new(100, 5000));
            if let Some(b) = budget {
                e.set_budget(b);
            }
            let mut i = 0u64;
            while !e.done() {
                e.load(2, 1, (i * 31) % 5000 * 64);
                e.bubble(1);
                i += 1;
            }
            e.finish()
        };
        assert_eq!(run(None), run(Some(Budget::unlimited())));
    }

    #[test]
    fn determinism_same_input_same_cycles() {
        let run = || {
            let mut e = engine(Window::new(100, 5000));
            let mut i = 0u64;
            while !e.done() {
                e.load(2, 1, (i * 31) % 5000 * 64);
                e.bubble(1);
                i += 1;
            }
            e.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats.llc.misses, b.stats.llc.misses);
    }
}
