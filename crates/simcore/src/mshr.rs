//! Miss Status Holding Register (MSHR) file, timestamp-based.
//!
//! The simulator is scoreboard-driven rather than event-driven: an MSHR
//! entry records the cycle its miss completes. Acquiring a slot when the
//! file is full delays the new miss until the earliest outstanding one
//! retires, which is how limited MSHRs throttle memory-level parallelism.

/// Outcome of asking the MSHR file for a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A miss to the same block is already outstanding; the new request
    /// merges and completes at the recorded cycle.
    Merged { done: u64 },
    /// A slot was granted; the miss may start at `start` (>= now).
    Granted { start: u64 },
}

/// A fixed-capacity MSHR file.
///
/// Entries live in two parallel arrays (block addresses and completion
/// cycles) rather than a `Vec` of structs: the purge sweep reads only
/// `done` and the merge probe reads only `blocks`, so each scan touches
/// half the bytes. Entry order is observable — merges match the first
/// occupant and the full-file victim is the first minimum-`done` entry —
/// so every operation here preserves the same ordering the struct-of-Vec
/// version had.
#[derive(Debug)]
pub struct MshrFile {
    blocks: Vec<u64>,
    done: Vec<u64>,
    capacity: usize,
    /// Lower bound on every resident completion cycle (`u64::MAX` when
    /// empty). While `now < min_done` nothing can have expired, so the
    /// purge sweep — otherwise run on every acquire — is one compare.
    min_done: u64,
    /// Total same-block merges observed.
    pub merges: u64,
    /// Total cycles requests were delayed waiting for a free slot.
    pub stall_cycles: u64,
    /// Highest simultaneous occupancy ever committed (telemetry).
    pub high_water: u64,
}

impl MshrFile {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            blocks: Vec::with_capacity(capacity),
            done: Vec::with_capacity(capacity),
            capacity,
            min_done: u64::MAX,
            merges: 0,
            stall_cycles: 0,
            high_water: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Outstanding (not yet completed at `now`) entries.
    pub fn outstanding(&self, now: u64) -> usize {
        self.done.iter().filter(|&&d| d > now).count()
    }

    /// Is there a free slot at `now`? Prefetchers must check this before
    /// issuing: a prefetch needs an MSHR like any other miss and is
    /// dropped when the file is demand-saturated.
    pub fn has_free(&self, now: u64) -> bool {
        self.outstanding(now) < self.capacity
    }

    /// Non-blocking acquire for prefetches: returns false (drop the
    /// prefetch) when the file is full or the block is already in flight.
    /// On success the caller must [`MshrFile::commit`] the completion so
    /// the slot stays occupied — the occupancy is what throttles
    /// prefetching under demand pressure.
    pub fn try_acquire(&mut self, block: u64, now: u64) -> bool {
        self.purge(now);
        if self.done.len() >= self.capacity {
            return false;
        }
        if self.blocks.contains(&block) {
            return false;
        }
        true
    }

    /// Drop completed entries, keeping the survivors in their original
    /// order (order is observable through merge/victim selection).
    fn purge(&mut self, now: u64) {
        if now < self.min_done {
            return; // nothing resident has expired yet
        }
        let mut w = 0;
        let mut min = u64::MAX;
        for r in 0..self.done.len() {
            let d = self.done[r];
            if d > now {
                self.blocks[w] = self.blocks[r];
                self.done[w] = d;
                min = min.min(d);
                w += 1;
            }
        }
        self.blocks.truncate(w);
        self.done.truncate(w);
        self.min_done = min;
    }

    /// Request a slot for a miss to `block` issued at `now`.
    pub fn acquire(&mut self, block: u64, now: u64) -> MshrOutcome {
        self.purge(now);
        if let Some(i) = self.blocks.iter().position(|&b| b == block) {
            self.merges += 1;
            return MshrOutcome::Merged { done: self.done[i] };
        }
        if self.done.len() < self.capacity {
            return MshrOutcome::Granted { start: now };
        }
        // Full: wait for the earliest completion, then reuse that slot.
        // First minimum, so ties pick the oldest entry.
        let mut idx = 0;
        let mut earliest = u64::MAX;
        for (i, &d) in self.done.iter().enumerate() {
            if d < earliest {
                earliest = d;
                idx = i;
            }
        }
        let start = self.done[idx];
        self.blocks.swap_remove(idx);
        self.done.swap_remove(idx);
        self.stall_cycles += start - now;
        MshrOutcome::Granted { start }
    }

    /// Serialize occupancy (in entry order — order is observable through
    /// merge/victim selection) plus counters. Capacity is written for
    /// validation only.
    pub fn save_state(&self, w: &mut simstate::StateSink) {
        w.tag(b"MSHR");
        w.put_usize(self.capacity);
        w.put_u64s(&self.blocks);
        w.put_u64s(&self.done);
        w.put_u64(self.min_done);
        w.put_u64(self.merges);
        w.put_u64(self.stall_cycles);
        w.put_u64(self.high_water);
    }

    /// Restore state saved by [`Self::save_state`] into a file of the same
    /// capacity.
    pub fn load_state(
        &mut self,
        r: &mut simstate::StateSource,
    ) -> Result<(), simstate::StateError> {
        r.expect_tag(b"MSHR")?;
        let capacity = r.get_usize()?;
        if capacity != self.capacity {
            return Err(simstate::StateError::ShapeMismatch {
                what: "mshr capacity",
                expected: self.capacity as u64,
                found: capacity as u64,
            });
        }
        let blocks = r.read_u64s_bounded("mshr blocks", self.capacity)?;
        let done = r.read_u64s_bounded("mshr done", self.capacity)?;
        if blocks.len() != done.len() {
            return Err(simstate::StateError::ShapeMismatch {
                what: "mshr done entries",
                expected: blocks.len() as u64,
                found: done.len() as u64,
            });
        }
        self.blocks = blocks;
        self.done = done;
        self.min_done = r.get_u64()?;
        self.merges = r.get_u64()?;
        self.stall_cycles = r.get_u64()?;
        self.high_water = r.get_u64()?;
        Ok(())
    }

    /// Record the completion cycle for a granted miss.
    pub fn commit(&mut self, block: u64, done: u64) {
        debug_assert!(self.done.len() < self.capacity);
        self.blocks.push(block);
        self.done.push(done);
        self.min_done = self.min_done.min(done);
        self.high_water = self.high_water.max(self.done.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_up_to_capacity() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.acquire(1, 0), MshrOutcome::Granted { start: 0 });
        m.commit(1, 100);
        assert_eq!(m.acquire(2, 0), MshrOutcome::Granted { start: 0 });
        m.commit(2, 150);
        assert_eq!(m.outstanding(0), 2);
    }

    #[test]
    fn same_block_merges() {
        let mut m = MshrFile::new(2);
        m.acquire(7, 0);
        m.commit(7, 99);
        assert_eq!(m.acquire(7, 10), MshrOutcome::Merged { done: 99 });
        assert_eq!(m.merges, 1);
    }

    #[test]
    fn full_file_delays_to_earliest_completion() {
        let mut m = MshrFile::new(2);
        m.acquire(1, 0);
        m.commit(1, 100);
        m.acquire(2, 0);
        m.commit(2, 50);
        // Full at cycle 10; earliest completion is 50.
        assert_eq!(m.acquire(3, 10), MshrOutcome::Granted { start: 50 });
        assert_eq!(m.stall_cycles, 40);
    }

    #[test]
    fn completed_entries_free_slots() {
        let mut m = MshrFile::new(1);
        m.acquire(1, 0);
        m.commit(1, 20);
        // At cycle 30 the entry has completed; a new miss starts immediately.
        assert_eq!(m.acquire(2, 30), MshrOutcome::Granted { start: 30 });
        assert_eq!(m.stall_cycles, 0);
    }

    #[test]
    fn completed_entry_does_not_merge() {
        let mut m = MshrFile::new(2);
        m.acquire(5, 0);
        m.commit(5, 20);
        // Same block after completion is a fresh miss, not a merge.
        assert_eq!(m.acquire(5, 25), MshrOutcome::Granted { start: 25 });
        assert_eq!(m.merges, 0);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut m = MshrFile::new(4);
        m.acquire(1, 0);
        m.commit(1, 100);
        m.acquire(2, 0);
        m.commit(2, 100);
        assert_eq!(m.high_water, 2);
        // Entries complete; new misses never exceed the old peak.
        m.acquire(3, 200);
        m.commit(3, 250);
        assert_eq!(m.high_water, 2, "purge must not inflate the mark");
        m.acquire(4, 200);
        m.commit(4, 250);
        m.acquire(5, 200);
        m.commit(5, 250);
        assert_eq!(m.high_water, 3);
    }

    #[test]
    fn purge_preserves_survivor_order() {
        // Two survivors with tied `done` straddling an expired entry: after
        // purge, a full-file acquire must evict the *older* survivor (first
        // minimum), which is only true if compaction kept their order.
        let mut m = MshrFile::new(3);
        m.acquire(1, 0);
        m.commit(1, 100);
        m.acquire(2, 0);
        m.commit(2, 10); // expires first
        m.acquire(3, 0);
        m.commit(3, 100); // tied with block 1
                          // At cycle 20, block 2 is gone; the file refills to capacity.
        assert_eq!(m.acquire(4, 20), MshrOutcome::Granted { start: 20 });
        m.commit(4, 200);
        // Full at cycle 30. Earliest done is 100, shared by blocks 1 and 3;
        // block 1 was committed first and must be the victim, so a
        // follow-up access to block 3 still merges while block 1 does not.
        assert_eq!(m.acquire(5, 30), MshrOutcome::Granted { start: 100 });
        m.commit(5, 300);
        assert_eq!(m.acquire(3, 31), MshrOutcome::Merged { done: 100 });
        assert_eq!(m.acquire(1, 32), MshrOutcome::Granted { start: 100 });
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
