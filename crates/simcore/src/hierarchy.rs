//! The conventional cache hierarchy (the paper's Baseline), split into a
//! per-core private side (TLBs, L1D, L2C) and a shared backend (LLC + DRAM)
//! so the same components serve both single-core and multi-core engines —
//! and so the SDC+LP system in the `sdclp` crate can wrap the private side
//! while reusing the backend.

use crate::block::block_of;
use crate::cache::{Cache, LookupResult};
use crate::config::SystemConfig;
use crate::distill::{DistillCache, DistillResult};
use crate::dram::Dram;
use crate::mshr::{MshrFile, MshrOutcome};
use crate::prefetch::PrefetchState;
use crate::replacement::ReplCtx;
use crate::stats::HierStats;
use crate::tlb::TlbHierarchy;
use crate::trace::MemRef;
use crate::victim::VictimCache;

/// Which component ultimately supplied the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    L1d,
    Sdc,
    L2c,
    Llc,
    Dram,
}

/// Timing outcome of one memory access.
#[derive(Debug, Clone, Copy)]
pub struct AccessOutcome {
    /// Cycle the data is available to the core.
    pub completion: u64,
    pub served_by: ServedBy,
    /// True when the access was delayed by a full MSHR file anywhere on
    /// its path (telemetry: the engine tags the ROB entry with it).
    pub mshr_stalled: bool,
}

impl AccessOutcome {
    pub fn new(completion: u64, served_by: ServedBy) -> Self {
        AccessOutcome { completion, served_by, mshr_stalled: false }
    }

    pub fn with_mshr_stall(mut self, stalled: bool) -> Self {
        self.mshr_stalled = stalled;
        self
    }

    pub fn served_by_dram(&self) -> bool {
        self.served_by == ServedBy::Dram
    }
}

/// A complete memory system as seen by the single-core engine.
pub trait MemorySystem {
    /// Perform the demand access in `r`, issued at core cycle `now`.
    fn access(&mut self, r: &MemRef, now: u64) -> AccessOutcome;
    /// Snapshot of all component statistics.
    fn collect_stats(&self) -> HierStats;
    /// Clear statistics at the warmup/measurement boundary
    /// (microarchitectural state is preserved).
    fn reset_stats(&mut self);
    /// Hand a telemetry handle to every component that emits events
    /// (DRAM row conflicts, SDC routing). The default keeps telemetry
    /// fully optional: systems that don't override it simply never emit.
    fn attach_telemetry(&mut self, _tel: simtel::TelemetryHandle) {}
    /// Cumulative side-channel counters for interval snapshots (MSHR
    /// pressure, LP routing mix, SDC directory occupancy).
    fn telemetry_counters(&self) -> simtel::ExtraCounters {
        simtel::ExtraCounters::default()
    }
    /// Serialize the complete deterministic state of the memory system.
    fn save_state(&self, w: &mut simstate::StateSink);
    /// Restore state saved by [`MemorySystem::save_state`] into a system of
    /// the same configuration (geometry is validated, never assumed).
    fn load_state(&mut self, r: &mut simstate::StateSource) -> Result<(), simstate::StateError>;
}

/// The per-core private component of any evaluated system: it sees the
/// access first and may resolve it privately or escalate to the shared
/// backend. Implemented by the baseline [`CoreSide`] here and by the
/// SDC+LP core in the `sdclp` crate.
pub trait CoreMemory {
    fn access(&mut self, r: &MemRef, now: u64, backend: &mut SharedBackend) -> AccessOutcome;
    /// Per-core statistics (the caller merges in the shared backend's).
    fn collect_core_stats(&self) -> HierStats;
    fn reset_stats(&mut self);
    /// See [`MemorySystem::attach_telemetry`].
    fn attach_telemetry(&mut self, _tel: simtel::TelemetryHandle) {}
    /// See [`MemorySystem::telemetry_counters`] (core-private part only;
    /// the caller merges the shared backend's).
    fn telemetry_counters(&self) -> simtel::ExtraCounters {
        simtel::ExtraCounters::default()
    }
    /// Serialize the core-private deterministic state.
    fn save_state(&self, w: &mut simstate::StateSink);
    /// Restore state saved by [`CoreMemory::save_state`].
    fn load_state(&mut self, r: &mut simstate::StateSource) -> Result<(), simstate::StateError>;
}

impl<M: MemorySystem + ?Sized> MemorySystem for Box<M> {
    fn access(&mut self, r: &MemRef, now: u64) -> AccessOutcome {
        (**self).access(r, now)
    }

    fn collect_stats(&self) -> HierStats {
        (**self).collect_stats()
    }

    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }

    fn attach_telemetry(&mut self, tel: simtel::TelemetryHandle) {
        (**self).attach_telemetry(tel)
    }

    fn telemetry_counters(&self) -> simtel::ExtraCounters {
        (**self).telemetry_counters()
    }

    fn save_state(&self, w: &mut simstate::StateSink) {
        (**self).save_state(w)
    }

    fn load_state(&mut self, r: &mut simstate::StateSource) -> Result<(), simstate::StateError> {
        (**self).load_state(r)
    }
}

impl<C: CoreMemory + ?Sized> CoreMemory for Box<C> {
    fn access(&mut self, r: &MemRef, now: u64, backend: &mut SharedBackend) -> AccessOutcome {
        (**self).access(r, now, backend)
    }

    fn collect_core_stats(&self) -> HierStats {
        (**self).collect_core_stats()
    }

    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }

    fn attach_telemetry(&mut self, tel: simtel::TelemetryHandle) {
        (**self).attach_telemetry(tel)
    }

    fn telemetry_counters(&self) -> simtel::ExtraCounters {
        (**self).telemetry_counters()
    }

    fn save_state(&self, w: &mut simstate::StateSink) {
        (**self).save_state(w)
    }

    fn load_state(&mut self, r: &mut simstate::StateSource) -> Result<(), simstate::StateError> {
        (**self).load_state(r)
    }
}

/// LLC flavor: a normal cache or the Line Distillation variant.
pub enum LlcModel {
    Normal(Cache),
    Distill(DistillCache),
}

impl LlcModel {
    fn access(&mut self, addr: u64, block: u64, is_write: bool, ctx: ReplCtx) -> bool {
        match self {
            LlcModel::Normal(c) => c.access(addr, block, is_write, ctx) == LookupResult::Hit,
            LlcModel::Distill(d) => d.access(addr, block, is_write, ctx) != DistillResult::Miss,
        }
    }

    fn fill(
        &mut self,
        addr: u64,
        block: u64,
        is_write: bool,
        ctx: ReplCtx,
    ) -> Option<crate::cache::Eviction> {
        match self {
            LlcModel::Normal(c) => c.fill(addr, block, is_write, false, ctx),
            LlcModel::Distill(d) => d.fill(addr, block, is_write, ctx),
        }
    }

    pub fn probe(&self, block: u64) -> bool {
        match self {
            LlcModel::Normal(c) => c.probe(block),
            LlcModel::Distill(d) => d.probe(block),
        }
    }

    pub fn invalidate(&mut self, block: u64) -> Option<bool> {
        match self {
            LlcModel::Normal(c) => c.invalidate(block),
            LlcModel::Distill(d) => d.invalidate(block),
        }
    }

    fn mark_dirty(&mut self, block: u64) -> bool {
        match self {
            LlcModel::Normal(c) => c.mark_dirty(block),
            LlcModel::Distill(d) => d.mark_dirty(block),
        }
    }

    pub fn stats(&self) -> &crate::stats::CacheStats {
        match self {
            LlcModel::Normal(c) => &c.stats,
            LlcModel::Distill(d) => d.stats(),
        }
    }

    pub fn stats_mut(&mut self) -> &mut crate::stats::CacheStats {
        match self {
            LlcModel::Normal(c) => &mut c.stats,
            LlcModel::Distill(d) => d.stats_mut(),
        }
    }

    pub fn latency(&self) -> u64 {
        match self {
            LlcModel::Normal(c) => c.latency,
            LlcModel::Distill(d) => d.latency,
        }
    }

    /// Serialize the LLC (variant discriminant + cache state).
    pub fn save_state(&self, w: &mut simstate::StateSink) {
        w.tag(b"LLC_");
        match self {
            LlcModel::Normal(c) => {
                w.put_u8(0);
                c.save_state(w);
            }
            LlcModel::Distill(d) => {
                w.put_u8(1);
                d.save_state(w);
            }
        }
    }

    /// Restore state saved by [`Self::save_state`]. The live variant must
    /// match (the LLC flavor is configuration).
    pub fn load_state(
        &mut self,
        r: &mut simstate::StateSource,
    ) -> Result<(), simstate::StateError> {
        r.expect_tag(b"LLC_")?;
        let disc = r.get_u8()?;
        match (disc, &mut *self) {
            (0, LlcModel::Normal(c)) => c.load_state(r),
            (1, LlcModel::Distill(d)) => d.load_state(r),
            _ => Err(simstate::StateError::BadValue {
                what: "llc model discriminant",
                found: u64::from(disc),
            }),
        }
    }
}

/// Shared LLC + DRAM (one instance per simulated machine).
pub struct SharedBackend {
    pub llc: LlcModel,
    pub llc_mshr: MshrFile,
    pub dram: Dram,
    pub model_prefetch_traffic: bool,
}

impl SharedBackend {
    pub fn new(cfg: &SystemConfig) -> Self {
        Self::with_llc(cfg, LlcModel::Normal(Cache::new(&cfg.llc)))
    }

    /// Backend with the Line Distillation LLC: up to 3 of the ways become
    /// the word-organized cache, keeping total capacity identical. Narrow
    /// LLCs donate fewer ways so at least one line-organized way remains
    /// (`ways - 3` would wrap for associativities of 3 or less).
    pub fn new_distill(cfg: &SystemConfig) -> Self {
        assert!(
            cfg.llc.ways >= 2,
            "Line Distillation needs an LLC with at least 2 ways (got {})",
            cfg.llc.ways
        );
        let woc_ways = 3.min(cfg.llc.ways - 1);
        let loc_ways = cfg.llc.ways - woc_ways;
        Self::with_llc(cfg, LlcModel::Distill(DistillCache::new(&cfg.llc, loc_ways)))
    }

    fn with_llc(cfg: &SystemConfig, llc: LlcModel) -> Self {
        SharedBackend {
            llc,
            llc_mshr: MshrFile::new(cfg.llc.mshr_entries),
            dram: Dram::new(&cfg.dram),
            model_prefetch_traffic: cfg.model_prefetch_traffic,
        }
    }

    /// Demand access arriving at the LLC at cycle `t_llc`. `oracle_pos` is
    /// the issuing core's T-OPT position (in hinted-access units, the same
    /// clock `MemRef::next_use` hints are expressed in).
    /// Returns (completion cycle, who served it, MSHR-stalled flag).
    pub fn access(&mut self, r: &MemRef, t_llc: u64, oracle_pos: u64) -> (u64, ServedBy, bool) {
        let block = block_of(r.addr);
        let ctx = ReplCtx { next_use: r.next_use, pos: oracle_pos, sid: r.sid };
        let hit = self.llc.access(r.addr, block, r.is_write, ctx);
        let t_llc_done = t_llc + self.llc.latency();
        if hit {
            return (t_llc_done, ServedBy::Llc, false);
        }
        let (t_dram, stalled) = match self.llc_mshr.acquire(block, t_llc_done) {
            MshrOutcome::Merged { done } => return (done, ServedBy::Llc, false),
            MshrOutcome::Granted { start } => (start, start > t_llc_done),
        };
        let done = self.dram.access(block, false, t_dram);
        self.llc_mshr.commit(block, done);
        if let Some(ev) = self.llc.fill(r.addr, block, false, ctx) {
            if ev.dirty {
                self.dram.access(ev.block, true, done);
            }
        }
        (done, ServedBy::Dram, stalled)
    }

    /// Fetch a block directly from DRAM, bypassing the LLC (the SDC miss
    /// path). The block is *not* filled anywhere here.
    /// Returns (completion cycle, MSHR-stalled flag).
    pub fn dram_fetch(&mut self, block: u64, t: u64) -> (u64, bool) {
        let (t_dram, stalled) = match self.llc_mshr.acquire(block, t) {
            MshrOutcome::Merged { done } => return (done, false),
            MshrOutcome::Granted { start } => (start, start > t),
        };
        let done = self.dram.access(block, false, t_dram);
        self.llc_mshr.commit(block, done);
        (done, stalled)
    }

    /// Write a dirty line evicted from a private L2 back into the LLC
    /// (allocate-on-writeback), spilling further victims to DRAM.
    pub fn writeback(&mut self, block: u64, now: u64) {
        if self.llc.mark_dirty(block) {
            return;
        }
        let addr = block << crate::block::BLOCK_BITS;
        if let Some(ev) = self.llc.fill(addr, block, true, ReplCtx::NONE) {
            if ev.dirty {
                self.dram.access(ev.block, true, now);
            }
        }
    }

    /// Write a dirty block straight to DRAM (SDC evictions bypass the LLC).
    pub fn dram_writeback(&mut self, block: u64, now: u64) {
        self.dram.access(block, true, now);
    }

    /// Source a prefetch candidate from the LLC or DRAM. Returns false if
    /// the prefetch had to be dropped (DRAM congested); the caller must
    /// then not fill the line.
    pub fn prefetch_source(&mut self, block: u64, now: u64) -> bool {
        if self.llc.probe(block) {
            return true;
        }
        if self.model_prefetch_traffic {
            return self.dram.try_prefetch(block, now, crate::config::PREFETCH_DROP_SLACK);
        }
        true
    }

    pub fn reset_stats(&mut self) {
        self.llc.stats_mut().reset();
        self.dram.stats.reset();
    }

    /// Forward a telemetry handle to the event-emitting components.
    pub fn attach_telemetry(&mut self, tel: simtel::TelemetryHandle) {
        self.dram.attach_telemetry(tel);
    }

    /// Backend share of [`MemorySystem::telemetry_counters`].
    pub fn telemetry_counters(&self) -> simtel::ExtraCounters {
        simtel::ExtraCounters {
            mshr_high_water: self.llc_mshr.high_water,
            mshr_stall_cycles: self.llc_mshr.stall_cycles,
            ..Default::default()
        }
    }

    /// Serialize the shared LLC + MSHR + DRAM state. The
    /// `model_prefetch_traffic` flag is configuration and not stored.
    pub fn save_state(&self, w: &mut simstate::StateSink) {
        w.tag(b"BKND");
        self.llc.save_state(w);
        self.llc_mshr.save_state(w);
        self.dram.save_state(w);
    }

    /// Restore state saved by [`Self::save_state`].
    pub fn load_state(
        &mut self,
        r: &mut simstate::StateSource,
    ) -> Result<(), simstate::StateError> {
        r.expect_tag(b"BKND")?;
        self.llc.load_state(r)?;
        self.llc_mshr.load_state(r)?;
        self.dram.load_state(r)?;
        Ok(())
    }
}

/// Per-core private side of the baseline hierarchy: DTLB/STLB, L1D, L2C,
/// their MSHRs and prefetchers.
pub struct CoreSide {
    pub tlb: TlbHierarchy,
    pub l1d: Cache,
    pub l2c: Cache,
    l1_mshr: MshrFile,
    l2_mshr: MshrFile,
    l1_prefetcher: PrefetchState,
    l2_prefetcher: PrefetchState,
    pf_buf: Vec<u64>,
    /// T-OPT oracle clock: counts hinted accesses from this core, the time
    /// base `MemRef::next_use` values refer to. 64-bit so it never wraps.
    oracle_pos: u64,
    /// Optional victim cache beside the L1D (related-work baseline).
    pub victim: Option<VictimCache>,
}

impl CoreSide {
    pub fn new(cfg: &SystemConfig) -> Self {
        CoreSide {
            tlb: TlbHierarchy::new(&cfg.dtlb, &cfg.stlb),
            l1d: Cache::new(&cfg.l1d),
            l2c: Cache::new(&cfg.l2c),
            l1_mshr: MshrFile::new(cfg.l1d.mshr_entries),
            l2_mshr: MshrFile::new(cfg.l2c.mshr_entries),
            l1_prefetcher: PrefetchState::new(cfg.l1d.prefetcher),
            l2_prefetcher: PrefetchState::new(cfg.l2c.prefetcher),
            pf_buf: Vec::with_capacity(8),
            oracle_pos: 0,
            victim: (cfg.l1_victim_entries > 0).then(|| VictimCache::new(cfg.l1_victim_entries)),
        }
    }

    /// Dispose of an L1D eviction: into the victim cache when one exists
    /// (its dirty displacements continue to the L2), else dirty victims go
    /// straight to the L2.
    fn handle_l1_eviction(
        &mut self,
        ev: crate::cache::Eviction,
        backend: &mut SharedBackend,
        now: u64,
    ) {
        if let Some(vc) = &mut self.victim {
            if let Some(dd) = vc.insert(ev.block, ev.dirty) {
                self.l1_victim_to_l2(dd.block, backend, now);
            }
        } else if ev.dirty {
            self.l1_victim_to_l2(ev.block, backend, now);
        }
    }

    /// Spill a dirty L1 victim into the L2 (allocate-on-writeback).
    fn l1_victim_to_l2(&mut self, block: u64, backend: &mut SharedBackend, now: u64) {
        if self.l2c.mark_dirty(block) {
            return;
        }
        let addr = block << crate::block::BLOCK_BITS;
        if let Some(ev) = self.l2c.fill(addr, block, true, false, ReplCtx::NONE) {
            if ev.dirty {
                backend.writeback(ev.block, now);
            }
        }
    }

    fn l1_prefetch(
        &mut self,
        pc: u16,
        block: u64,
        hit: bool,
        backend: &mut SharedBackend,
        now: u64,
    ) {
        if self.l1_prefetcher.is_none() {
            return;
        }
        let mut buf = std::mem::take(&mut self.pf_buf);
        buf.clear();
        self.l1_prefetcher.on_access(pc, block, hit, &mut buf);
        for &pb in &buf {
            if self.l1d.probe(pb) {
                continue;
            }
            if !self.l1_mshr.try_acquire(pb, now) {
                break; // MSHR file full: the prefetch is dropped
            }
            let done = if self.l2c.probe(pb) {
                now + self.l2c.latency
            } else if backend.llc.probe(pb) {
                now + backend.llc.latency()
            } else if backend.model_prefetch_traffic {
                if !backend.dram.try_prefetch(pb, now, crate::config::PREFETCH_DROP_SLACK) {
                    continue; // dropped under DRAM congestion
                }
                now + backend.dram.closed_row_latency()
            } else {
                now + backend.dram.closed_row_latency()
            };
            // The prefetch occupies its MSHR until the fill arrives —
            // the feedback that throttles prefetching under pressure.
            self.l1_mshr.commit(pb, done);
            let pa = pb << crate::block::BLOCK_BITS;
            if let Some(ev) = self.l1d.fill(pa, pb, false, true, ReplCtx::NONE) {
                self.handle_l1_eviction(ev, backend, now);
            }
        }
        self.pf_buf = buf;
    }

    fn l2_prefetch(
        &mut self,
        pc: u16,
        block: u64,
        hit: bool,
        backend: &mut SharedBackend,
        now: u64,
    ) {
        if self.l2_prefetcher.is_none() {
            return;
        }
        let mut buf = std::mem::take(&mut self.pf_buf);
        buf.clear();
        self.l2_prefetcher.on_access(pc, block, hit, &mut buf);
        for &pb in &buf {
            if self.l2c.probe(pb) {
                continue;
            }
            if !self.l2_mshr.try_acquire(pb, now) {
                break;
            }
            let done = if backend.llc.probe(pb) {
                now + backend.llc.latency()
            } else if backend.model_prefetch_traffic {
                if !backend.dram.try_prefetch(pb, now, crate::config::PREFETCH_DROP_SLACK) {
                    continue;
                }
                now + backend.dram.closed_row_latency()
            } else {
                now + backend.dram.closed_row_latency()
            };
            self.l2_mshr.commit(pb, done);
            let pa = pb << crate::block::BLOCK_BITS;
            if let Some(ev) = self.l2c.fill(pa, pb, false, true, ReplCtx::NONE) {
                if ev.dirty {
                    backend.writeback(ev.block, now);
                }
            }
        }
        self.pf_buf = buf;
    }

    /// The demand path below the L1D: L2 lookup, then the shared backend.
    /// `t_l2` is the cycle the request arrives at the L2.
    fn access_below_l1(
        &mut self,
        r: &MemRef,
        t_l2: u64,
        backend: &mut SharedBackend,
    ) -> (u64, ServedBy, bool) {
        let block = block_of(r.addr);
        let ctx = ReplCtx { next_use: r.next_use, pos: self.oracle_pos, sid: r.sid };

        let l2_hit = self.l2c.access(r.addr, block, r.is_write, ctx) == LookupResult::Hit;
        let t_l2_done = t_l2 + self.l2c.latency;
        if l2_hit {
            self.l2_prefetch(r.pc, block, true, backend, t_l2_done);
            return (t_l2_done, ServedBy::L2c, false);
        }

        let (t_llc, l2_stalled) = match self.l2_mshr.acquire(block, t_l2_done) {
            MshrOutcome::Merged { done } => return (done, ServedBy::L2c, false),
            MshrOutcome::Granted { start } => (start, start > t_l2_done),
        };

        let (done, served_by, llc_stalled) = backend.access(r, t_llc, self.oracle_pos);
        self.l2_mshr.commit(block, done);
        // Prefetches issue behind the demand so they never steal its DRAM
        // bank or bus slot.
        self.l2_prefetch(r.pc, block, false, backend, done);
        (done, served_by, l2_stalled || llc_stalled)
    }
}

impl CoreMemory for CoreSide {
    fn access(&mut self, r: &MemRef, now: u64, backend: &mut SharedBackend) -> AccessOutcome {
        let block = block_of(r.addr);
        if r.next_use != u32::MAX {
            // Advance the T-OPT oracle clock on every hinted access.
            self.oracle_pos += 1;
        }
        let ctx = ReplCtx { next_use: r.next_use, pos: self.oracle_pos, sid: r.sid };

        let t0 = now + self.tlb.translate(r.addr);

        let l1_hit = self.l1d.access(r.addr, block, r.is_write, ctx) == LookupResult::Hit;
        let t_l1_done = t0 + self.l1d.latency;
        if l1_hit {
            self.l1_prefetch(r.pc, block, true, backend, t_l1_done);
            return AccessOutcome::new(t_l1_done, ServedBy::L1d);
        }

        // Victim-cache probe (when configured): a hit swaps the line back
        // into the L1 at one extra cycle.
        if let Some(victim) = self.victim.as_mut() {
            if let Some(was_dirty) = victim.take(block) {
                if let Some(ev) = self.l1d.fill(r.addr, block, was_dirty || r.is_write, false, ctx)
                {
                    self.handle_l1_eviction(ev, backend, t_l1_done);
                }
                return AccessOutcome::new(t_l1_done + 1, ServedBy::L1d);
            }
        }

        let (t_l2, l1_stalled) = match self.l1_mshr.acquire(block, t_l1_done) {
            MshrOutcome::Merged { done } => return AccessOutcome::new(done, ServedBy::L1d),
            MshrOutcome::Granted { start } => (start, start > t_l1_done),
        };

        let (completion, served_by, below_stalled) = self.access_below_l1(r, t_l2, backend);
        self.l1_mshr.commit(block, completion);

        // Fill the private levels on the way back.
        if let Some(ev) = self.l2c.fill(r.addr, block, r.is_write, false, ctx) {
            if ev.dirty {
                backend.writeback(ev.block, completion);
            }
        }
        if let Some(ev) = self.l1d.fill(r.addr, block, r.is_write, false, ctx) {
            self.handle_l1_eviction(ev, backend, completion);
        }
        self.l1_prefetch(r.pc, block, false, backend, completion);
        AccessOutcome::new(completion, served_by).with_mshr_stall(l1_stalled || below_stalled)
    }

    fn collect_core_stats(&self) -> HierStats {
        HierStats {
            l1d: self.l1d.stats,
            l2c: self.l2c.stats,
            dtlb: self.tlb.dtlb_stats,
            stlb: self.tlb.stlb_stats,
            routed_to_l1d: self.l1d.stats.accesses,
            ..Default::default()
        }
    }

    fn reset_stats(&mut self) {
        self.l1d.stats.reset();
        self.l2c.stats.reset();
        self.tlb.dtlb_stats.reset();
        self.tlb.stlb_stats.reset();
    }

    fn telemetry_counters(&self) -> simtel::ExtraCounters {
        simtel::ExtraCounters {
            mshr_high_water: self.l1_mshr.high_water.max(self.l2_mshr.high_water),
            mshr_stall_cycles: self.l1_mshr.stall_cycles + self.l2_mshr.stall_cycles,
            ..Default::default()
        }
    }

    fn save_state(&self, w: &mut simstate::StateSink) {
        w.tag(b"CORE");
        self.tlb.save_state(w);
        self.l1d.save_state(w);
        self.l2c.save_state(w);
        self.l1_mshr.save_state(w);
        self.l2_mshr.save_state(w);
        self.l1_prefetcher.save_state(w);
        self.l2_prefetcher.save_state(w);
        w.put_u64(self.oracle_pos);
        // pf_buf is per-access scratch (cleared before every use): skipped.
        match &self.victim {
            None => w.put_bool(false),
            Some(vc) => {
                w.put_bool(true);
                vc.save_state(w);
            }
        }
    }

    fn load_state(&mut self, r: &mut simstate::StateSource) -> Result<(), simstate::StateError> {
        r.expect_tag(b"CORE")?;
        self.tlb.load_state(r)?;
        self.l1d.load_state(r)?;
        self.l2c.load_state(r)?;
        self.l1_mshr.load_state(r)?;
        self.l2_mshr.load_state(r)?;
        self.l1_prefetcher.load_state(r)?;
        self.l2_prefetcher.load_state(r)?;
        self.oracle_pos = r.get_u64()?;
        let has_victim = r.get_bool()?;
        match (&mut self.victim, has_victim) {
            (None, false) => Ok(()),
            (Some(vc), true) => vc.load_state(r),
            // Victim-cache presence is configuration; a mismatch means the
            // snapshot came from a different system.
            (_, found) => Err(simstate::StateError::BadValue {
                what: "victim cache presence",
                found: u64::from(found),
            }),
        }
    }
}

/// A single-core machine: one [`CoreMemory`] plus its own backend.
pub struct SingleCore<C: CoreMemory> {
    pub core: C,
    pub backend: SharedBackend,
}

impl<C: CoreMemory> SingleCore<C> {
    pub fn from_parts(core: C, backend: SharedBackend) -> Self {
        SingleCore { core, backend }
    }
}

impl<C: CoreMemory> MemorySystem for SingleCore<C> {
    fn access(&mut self, r: &MemRef, now: u64) -> AccessOutcome {
        self.core.access(r, now, &mut self.backend)
    }

    fn collect_stats(&self) -> HierStats {
        let mut s = self.core.collect_core_stats();
        s.llc = *self.backend.llc.stats();
        s.dram = self.backend.dram.stats;
        s
    }

    fn reset_stats(&mut self) {
        self.core.reset_stats();
        self.backend.reset_stats();
    }

    fn attach_telemetry(&mut self, tel: simtel::TelemetryHandle) {
        self.core.attach_telemetry(tel.clone());
        self.backend.attach_telemetry(tel);
    }

    fn telemetry_counters(&self) -> simtel::ExtraCounters {
        let core = self.core.telemetry_counters();
        let back = self.backend.telemetry_counters();
        simtel::ExtraCounters {
            mshr_high_water: core.mshr_high_water.max(back.mshr_high_water),
            mshr_stall_cycles: core.mshr_stall_cycles + back.mshr_stall_cycles,
            ..core
        }
    }

    fn save_state(&self, w: &mut simstate::StateSink) {
        self.core.save_state(w);
        self.backend.save_state(w);
    }

    fn load_state(&mut self, r: &mut simstate::StateSource) -> Result<(), simstate::StateError> {
        self.core.load_state(r)?;
        self.backend.load_state(r)?;
        Ok(())
    }
}

/// The paper's Baseline memory system.
pub type BaselineHierarchy = SingleCore<CoreSide>;

impl BaselineHierarchy {
    pub fn new(cfg: &SystemConfig) -> Self {
        SingleCore::from_parts(CoreSide::new(cfg), SharedBackend::new(cfg))
    }

    /// Baseline with the Line Distillation LLC (Distill Cache baseline).
    pub fn new_distill(cfg: &SystemConfig) -> Self {
        SingleCore::from_parts(CoreSide::new(cfg), SharedBackend::new_distill(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BLOCK_BYTES;
    use crate::config::PrefetcherKind;

    fn system() -> BaselineHierarchy {
        let mut cfg = SystemConfig::baseline(1);
        // Keep tests deterministic and focused: no prefetchers.
        cfg.l1d.prefetcher = PrefetcherKind::None;
        cfg.l2c.prefetcher = PrefetcherKind::None;
        BaselineHierarchy::new(&cfg)
    }

    fn read(addr: u64) -> MemRef {
        MemRef::read(1, 0, addr)
    }

    #[test]
    fn cold_access_reaches_dram_and_warms_all_levels() {
        let mut sys = system();
        let out = sys.access(&read(0x10000), 0);
        assert_eq!(out.served_by, ServedBy::Dram);
        let out2 = sys.access(&read(0x10000), out.completion);
        assert_eq!(out2.served_by, ServedBy::L1d);
        assert_eq!(out2.completion - out.completion, 4);
    }

    #[test]
    fn dram_access_pays_serial_lookup_latencies() {
        let mut sys = system();
        let out = sys.access(&read(0x20000), 0);
        // TLB walk + L1(4) + L2(10) + LLC(56) + DRAM: well above 150 cycles.
        assert!(out.completion > 150, "completion = {}", out.completion);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut sys = system();
        for i in 0..1024u64 {
            let a = i * BLOCK_BYTES;
            sys.access(&read(a), i * 1000);
        }
        // Block 0 left the 512-line L1 but is still in the L2.
        let out = sys.access(&read(0), 10_000_000);
        assert_eq!(out.served_by, ServedBy::L2c);
    }

    #[test]
    fn mshr_merge_returns_outstanding_completion() {
        let mut sys = system();
        let a = 0x40000;
        let o1 = sys.access(&read(a), 0);
        let o2 = sys.access(&read(a + 8), 1);
        assert!(o2.completion <= o1.completion);
    }

    #[test]
    fn write_allocates() {
        let mut sys = system();
        let w = MemRef::write(1, 0, 0x50000);
        sys.access(&w, 0);
        assert!(sys.core.l1d.probe(block_of(0x50000)));
        assert_eq!(sys.collect_stats().l1d.misses, 1);
    }

    #[test]
    fn stats_reset_preserves_state() {
        let mut sys = system();
        sys.access(&read(0x60000), 0);
        sys.reset_stats();
        assert_eq!(sys.collect_stats().l1d.accesses, 0);
        let out = sys.access(&read(0x60000), 1_000_000);
        assert_eq!(out.served_by, ServedBy::L1d);
    }

    #[test]
    fn distill_variant_constructs_and_serves() {
        let mut cfg = SystemConfig::baseline(1);
        cfg.l1d.prefetcher = PrefetcherKind::None;
        cfg.l2c.prefetcher = PrefetcherKind::None;
        let mut sys = BaselineHierarchy::new_distill(&cfg);
        let out = sys.access(&read(0x70000), 0);
        assert_eq!(out.served_by, ServedBy::Dram);
        let out2 = sys.access(&read(0x70000), out.completion);
        assert_eq!(out2.served_by, ServedBy::L1d);
    }

    #[test]
    fn distill_clamps_woc_ways_for_narrow_llcs() {
        // `ways - 3` used to wrap for associativities <= 3; narrow LLCs now
        // donate fewer ways and must still construct and serve accesses.
        for ways in [2usize, 3, 4, 16] {
            let mut cfg = SystemConfig::baseline(1);
            cfg.l1d.prefetcher = PrefetcherKind::None;
            cfg.l2c.prefetcher = PrefetcherKind::None;
            cfg.llc.ways = ways;
            let mut sys = BaselineHierarchy::new_distill(&cfg);
            let out = sys.access(&read(0x70000), 0);
            assert_eq!(out.served_by, ServedBy::Dram, "ways={ways}");
            let out2 = sys.access(&read(0x70000), out.completion);
            assert_eq!(out2.served_by, ServedBy::L1d, "ways={ways}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 ways")]
    fn distill_rejects_direct_mapped_llc() {
        let mut cfg = SystemConfig::baseline(1);
        cfg.llc.ways = 1;
        let _ = SharedBackend::new_distill(&cfg);
    }

    #[test]
    fn next_line_prefetcher_turns_sequential_misses_into_hits() {
        let mut cfg = SystemConfig::baseline(1);
        cfg.l2c.prefetcher = PrefetcherKind::None;
        let mut sys = BaselineHierarchy::new(&cfg); // L1 next-line on
        let mut t = 0;
        let mut dram_served = 0;
        for i in 0..64u64 {
            let out = sys.access(&read(i * BLOCK_BYTES), t);
            t = out.completion;
            if out.served_by == ServedBy::Dram {
                dram_served += 1;
            }
        }
        assert!(dram_served < 40, "next-line should hide many misses, got {dram_served}");
    }

    #[test]
    fn dram_fetch_bypasses_llc() {
        let mut cfg = SystemConfig::baseline(1);
        cfg.l1d.prefetcher = PrefetcherKind::None;
        cfg.l2c.prefetcher = PrefetcherKind::None;
        let mut backend = SharedBackend::new(&cfg);
        let (done, stalled) = backend.dram_fetch(42, 0);
        assert!(done > 0);
        assert!(!stalled, "an idle MSHR file cannot stall the fetch");
        assert!(!backend.llc.probe(42), "bypass fetch must not fill the LLC");
    }
}
