//! Exporters: JSONL interval records and Chrome trace-event JSON.
//!
//! Both emitters are hand-written (the vendored `serde` stand-in only
//! handles flat derive output) and fully deterministic: fields appear in
//! a fixed order, floats are printed with a fixed precision, and every
//! timestamp is a simulated cycle. The Chrome trace loads directly in
//! Perfetto / `chrome://tracing` — simulated cycles are mapped onto the
//! microsecond `ts` axis.

use crate::{TelemetryInterval, TelemetryOutput, SHARED_CORE};
use std::fmt::Write as _;

/// Fixed-precision float rendering: valid JSON, byte-stable across runs.
fn f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.000000".to_string()
    }
}

/// One flat JSON object per interval, one interval per line. Flat keys
/// keep the lines parseable by the workspace's minimal JSON parser
/// (`gpworkloads::manifest`).
pub fn intervals_jsonl(intervals: &[TelemetryInterval]) -> String {
    let mut out = String::new();
    for iv in intervals {
        let _ = write!(
            out,
            concat!(
                "{{\"index\":{},\"core\":{},\"start_cycle\":{},\"end_cycle\":{},",
                "\"instructions\":{},\"ipc\":{},",
                "\"l1d_accesses\":{},\"l1d_hits\":{},\"l1d_misses\":{},\"l1d_mpki\":{},",
                "\"sdc_accesses\":{},\"sdc_hits\":{},\"sdc_misses\":{},\"sdc_mpki\":{},",
                "\"l2c_accesses\":{},\"l2c_hits\":{},\"l2c_misses\":{},\"l2c_mpki\":{},",
                "\"llc_accesses\":{},\"llc_hits\":{},\"llc_misses\":{},\"llc_mpki\":{},",
                "\"dram_reads\":{},\"dram_writes\":{},\"dram_row_hits\":{},",
                "\"dram_row_misses\":{},\"dram_row_conflicts\":{},\"dram_row_hit_rate\":{},",
                "\"mshr_high_water\":{},",
                "\"lp_lookups\":{},\"lp_sdc_routes\":{},\"lp_hierarchy_routes\":{},",
                "\"sdc_bypasses\":{},",
                "\"stall_rob_full\":{},\"stall_mshr_full\":{},\"stall_dram_wait\":{},",
                "\"stall_busy\":{}}}\n",
            ),
            iv.index,
            iv.core,
            iv.start_cycle,
            iv.end_cycle,
            iv.instructions,
            f(iv.ipc()),
            iv.l1d.accesses,
            iv.l1d.hits,
            iv.l1d.misses,
            f(iv.l1d.mpki(iv.instructions)),
            iv.sdc.accesses,
            iv.sdc.hits,
            iv.sdc.misses,
            f(iv.sdc.mpki(iv.instructions)),
            iv.l2c.accesses,
            iv.l2c.hits,
            iv.l2c.misses,
            f(iv.l2c.mpki(iv.instructions)),
            iv.llc.accesses,
            iv.llc.hits,
            iv.llc.misses,
            f(iv.llc.mpki(iv.instructions)),
            iv.dram.reads,
            iv.dram.writes,
            iv.dram.row_hits,
            iv.dram.row_misses,
            iv.dram.row_conflicts,
            f(iv.dram.row_hit_rate()),
            iv.mshr_high_water,
            iv.lp.lookups,
            iv.lp.sdc_routes,
            iv.lp.hierarchy_routes,
            iv.sdc_bypasses,
            iv.stalls.rob_full,
            iv.stalls.mshr_full,
            iv.stalls.dram_wait,
            iv.stalls.busy,
        );
    }
    out
}

/// Render the `tid` for a core id (shared components get their own lane).
fn tid(core: u32) -> u64 {
    if core == SHARED_CORE {
        9999
    } else {
        u64::from(core)
    }
}

/// Chrome trace-event JSON (the "JSON Array Format" with a top-level
/// object), loadable in Perfetto. Per interval: an `X` (complete) event
/// spanning the interval plus `C` (counter) tracks for IPC, L1D MPKI,
/// and the stall mix; per traced event: an `i` (instant) mark.
/// Timestamps are simulated cycles on the `ts` axis.
pub fn chrome_trace(output: &TelemetryOutput) -> String {
    let mut events: Vec<String> = Vec::new();
    for iv in &output.intervals {
        let t = tid(iv.core);
        events.push(format!(
            "{{\"name\":\"interval {}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\
             \"args\":{{\"instructions\":{},\"ipc\":{},\"l1d_mpki\":{}}}}}",
            iv.index,
            iv.start_cycle,
            iv.cycles(),
            t,
            iv.instructions,
            f(iv.ipc()),
            f(iv.l1d.mpki(iv.instructions)),
        ));
        events.push(format!(
            "{{\"name\":\"ipc\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":{},\
             \"args\":{{\"ipc\":{}}}}}",
            iv.start_cycle,
            t,
            f(iv.ipc()),
        ));
        events.push(format!(
            "{{\"name\":\"mpki\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":{},\
             \"args\":{{\"l1d\":{},\"l2c\":{},\"llc\":{}}}}}",
            iv.start_cycle,
            t,
            f(iv.l1d.mpki(iv.instructions)),
            f(iv.l2c.mpki(iv.instructions)),
            f(iv.llc.mpki(iv.instructions)),
        ));
        events.push(format!(
            "{{\"name\":\"stalls\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":{},\
             \"args\":{{\"rob_full\":{},\"mshr_full\":{},\"dram_wait\":{},\"busy\":{}}}}}",
            iv.start_cycle,
            t,
            iv.stalls.rob_full,
            iv.stalls.mshr_full,
            iv.stalls.dram_wait,
            iv.stalls.busy,
        ));
    }
    for ev in &output.events {
        events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\",\
             \"args\":{{\"severity\":\"{}\"}}}}",
            ev.kind.name(),
            ev.cycle,
            tid(ev.core),
            ev.severity().name(),
        ));
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ns\",\
         \"otherData\":{{\"clock\":\"simulated-cycles\",\"dropped_events\":{},\
         \"filtered_events\":{}}}}}",
        events.join(","),
        output.dropped_events,
        output.filtered_events,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, LevelDelta, TelemetryEvent};

    fn sample() -> TelemetryOutput {
        TelemetryOutput {
            intervals: vec![
                TelemetryInterval {
                    index: 0,
                    start_cycle: 0,
                    end_cycle: 100,
                    instructions: 50,
                    l1d: LevelDelta { accesses: 20, hits: 15, misses: 5 },
                    ..Default::default()
                },
                TelemetryInterval {
                    index: 1,
                    start_cycle: 100,
                    end_cycle: 250,
                    instructions: 60,
                    ..Default::default()
                },
            ],
            events: vec![
                TelemetryEvent { cycle: 42, core: 0, kind: EventKind::DramRowConflict },
                TelemetryEvent { cycle: 99, core: SHARED_CORE, kind: EventKind::WatchdogTick },
            ],
            dropped_events: 3,
            filtered_events: 1,
        }
    }

    #[test]
    fn jsonl_emits_one_line_per_interval() {
        let s = intervals_jsonl(&sample().intervals);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
        }
        assert!(lines[0].contains("\"l1d_misses\":5"));
        assert!(lines[0].contains("\"ipc\":0.500000"));
        assert!(lines[0].contains("\"l1d_mpki\":100.000000"));
        assert!(lines[1].contains("\"start_cycle\":100"));
    }

    #[test]
    fn jsonl_is_deterministic() {
        let s = sample();
        assert_eq!(intervals_jsonl(&s.intervals), intervals_jsonl(&s.intervals));
    }

    #[test]
    fn chrome_trace_has_balanced_structure_and_events() {
        let s = chrome_trace(&sample());
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"C\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"name\":\"dram_row_conflict\""));
        assert!(s.contains("\"tid\":9999"), "shared components get their own lane");
        assert!(s.contains("\"dropped_events\":3"));
        // Structural sanity: braces and brackets balance.
        let open = s.matches('{').count();
        let close = s.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn chrome_trace_of_empty_output_is_valid() {
        let s = chrome_trace(&TelemetryOutput::default());
        assert!(s.contains("\"traceEvents\":[]"));
    }
}
