#![forbid(unsafe_code)]
//! Deterministic telemetry for the simulator: interval snapshots, a
//! bounded event trace, and stall-cycle attribution.
//!
//! Design constraints (DESIGN.md §7):
//!
//! * **Zero-cost when disabled.** Every hook goes through a
//!   [`TelemetryHandle`] whose disabled form is a `None` — the hot path
//!   pays one branch and never constructs an event. A perf-neutrality
//!   test in the engine pins that an *attached* sink does not change
//!   simulated cycles either: telemetry only observes counters the
//!   simulator already maintains.
//! * **Deterministic.** Every timestamp is a simulated cycle; nothing in
//!   this crate reads the wall clock (simlint D2 applies), allocates
//!   randomness, or iterates a hash-ordered container. Two identical
//!   runs produce byte-identical telemetry files.
//! * **Bounded.** The event trace is a ring: when full, the oldest event
//!   is dropped and counted, so a pathological run cannot exhaust memory.
//!
//! The simulator crates depend on this one (never the reverse), so the
//! record types here are plain counters — `simcore` translates its own
//! stats structs into [`TelemetryInterval`] deltas when it snapshots.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

pub mod export;
pub mod render;

/// Default snapshot cadence: one interval per 100k traced instructions.
pub const DEFAULT_INTERVAL_INSTRUCTIONS: u64 = 100_000;

/// Default event-ring capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// The `core` id stamped on events from shared components (LLC-side
/// MSHRs, DRAM) that serve every core.
pub const SHARED_CORE: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Event severity, ordered: `Debug < Info < Warn`. The ring keeps only
/// events at or above its configured minimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Debug,
    Info,
    Warn,
}

impl Severity {
    pub fn name(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
        }
    }
}

/// Which memory level an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    L1d,
    Sdc,
    L2c,
    Llc,
    Dram,
}

impl Level {
    pub fn name(self) -> &'static str {
        match self {
            Level::L1d => "l1d",
            Level::Sdc => "sdc",
            Level::L2c => "l2c",
            Level::Llc => "llc",
            Level::Dram => "dram",
        }
    }
}

/// The traced event vocabulary. Each kind carries a fixed severity so
/// filtering needs no per-site configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A demand access was served below the named level (i.e. missed
    /// everything above it). Emitted by the engine from the access
    /// outcome, so it costs nothing inside the hierarchy walk.
    CacheMiss { served_by: Level },
    /// The LP routed an access around the hierarchy into the SDC.
    SdcBypass,
    /// An SDC-routed access was actually resident in the hierarchy —
    /// the Large Predictor called a cache-friendly line averse.
    LpMispredict,
    /// A DRAM access closed one row to open another (worst-case timing).
    DramRowConflict,
    /// The engine's runaway-simulation watchdog fired.
    WatchdogTick,
}

impl EventKind {
    pub fn severity(self) -> Severity {
        match self {
            EventKind::CacheMiss { .. } | EventKind::SdcBypass => Severity::Debug,
            EventKind::LpMispredict | EventKind::DramRowConflict => Severity::Info,
            EventKind::WatchdogTick => Severity::Warn,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::SdcBypass => "sdc_bypass",
            EventKind::LpMispredict => "lp_mispredict",
            EventKind::DramRowConflict => "dram_row_conflict",
            EventKind::WatchdogTick => "watchdog_tick",
        }
    }
}

/// One traced event. `cycle` is simulated time; `core` identifies the
/// emitting core ([`SHARED_CORE`] for shared components).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryEvent {
    pub cycle: u64,
    pub core: u32,
    pub kind: EventKind,
}

impl TelemetryEvent {
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

/// Bounded event ring with severity filtering. Keeps the *newest*
/// `capacity` events; older ones are dropped and counted so exporters
/// can report truncation instead of silently hiding it.
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    min_severity: Severity,
    events: VecDeque<TelemetryEvent>,
    /// Events evicted because the ring was full.
    pub dropped: u64,
    /// Events rejected by the severity filter.
    pub filtered: u64,
}

impl EventRing {
    pub fn new(capacity: usize, min_severity: Severity) -> Self {
        EventRing {
            capacity,
            min_severity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
            filtered: 0,
        }
    }

    pub fn push(&mut self, ev: TelemetryEvent) {
        if ev.severity() < self.min_severity {
            self.filtered += 1;
            return;
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn drain(&mut self) -> Vec<TelemetryEvent> {
        self.events.drain(..).collect()
    }
}

// ---------------------------------------------------------------------------
// Stall attribution
// ---------------------------------------------------------------------------

/// Why a ROB entry may hold up retirement. Tagged at completion time by
/// the engine; charged to a bucket when the dispatcher actually waits on
/// that entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StallTag {
    /// Non-memory instruction (or a write retired through the buffer).
    #[default]
    Core,
    /// Load served somewhere in the cache hierarchy.
    Mem,
    /// Load served by DRAM.
    Dram,
    /// Load delayed because an MSHR file was full before it could issue.
    MshrFull,
}

/// Retire-blocked cycle attribution. `rob_full`/`mshr_full`/`dram_wait`
/// count cycles the dispatcher spent waiting for a full ROB to drain,
/// split by what the blocking head entry was waiting on; `busy` is the
/// remainder of the window (cycles where dispatch made progress),
/// computed per interval as `cycles - attributed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBuckets {
    pub rob_full: u64,
    pub mshr_full: u64,
    pub dram_wait: u64,
    pub busy: u64,
}

impl StallBuckets {
    /// Charge `cycles` of dispatch stall to the bucket named by `tag`.
    pub fn charge(&mut self, tag: StallTag, cycles: u64) {
        match tag {
            StallTag::Core | StallTag::Mem => self.rob_full += cycles,
            StallTag::MshrFull => self.mshr_full += cycles,
            StallTag::Dram => self.dram_wait += cycles,
        }
    }

    /// Stall cycles attributed to a concrete cause (excludes `busy`).
    pub fn attributed(&self) -> u64 {
        self.rob_full + self.mshr_full + self.dram_wait
    }

    /// Per-interval delta against an earlier snapshot of the same
    /// cumulative buckets (`busy` is left 0; the engine fills it from
    /// the interval's cycle count).
    pub fn delta_since(&self, base: &StallBuckets) -> StallBuckets {
        StallBuckets {
            rob_full: self.rob_full.saturating_sub(base.rob_full),
            mshr_full: self.mshr_full.saturating_sub(base.mshr_full),
            dram_wait: self.dram_wait.saturating_sub(base.dram_wait),
            busy: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Interval records
// ---------------------------------------------------------------------------

/// Per-level access counters over one interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelDelta {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
}

impl LevelDelta {
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }

    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// DRAM activity over one interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramDelta {
    pub reads: u64,
    pub writes: u64,
    pub row_hits: u64,
    pub row_misses: u64,
    pub row_conflicts: u64,
}

impl DramDelta {
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// Large Predictor routing mix over one interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpDelta {
    pub lookups: u64,
    pub sdc_routes: u64,
    pub hierarchy_routes: u64,
}

/// Cumulative side-channel counters a memory system exposes to the
/// engine's snapshotter, beyond its ordinary hit/miss stats. All fields
/// are cumulative over the measurement window; the engine diffs the
/// monotone ones per interval and passes high-water marks through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtraCounters {
    /// Highest simultaneous occupancy seen across the system's MSHR
    /// files (window-cumulative high-water mark, not an interval delta).
    pub mshr_high_water: u64,
    /// Total cycles requests were delayed by full MSHR files.
    pub mshr_stall_cycles: u64,
    pub lp_lookups: u64,
    pub lp_sdc_routes: u64,
    pub lp_hierarchy_routes: u64,
    /// Accesses routed around the hierarchy into the SDC.
    pub sdc_bypasses: u64,
    /// Valid entries currently held by the SDC directory (instantaneous).
    pub sdcdir_occupancy: u64,
}

/// One interval snapshot: everything between two cycle stamps, as
/// deltas (except the documented high-water/occupancy fields).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TelemetryInterval {
    /// 0-based interval index within the run (per core).
    pub index: u64,
    pub core: u32,
    /// First cycle covered (exclusive of the previous interval's end).
    pub start_cycle: u64,
    /// Last cycle covered; strictly greater than `start_cycle`.
    pub end_cycle: u64,
    /// Instructions retired in the interval.
    pub instructions: u64,
    pub l1d: LevelDelta,
    pub sdc: LevelDelta,
    pub l2c: LevelDelta,
    pub llc: LevelDelta,
    pub dram: DramDelta,
    /// MSHR occupancy high-water mark (window-cumulative).
    pub mshr_high_water: u64,
    pub lp: LpDelta,
    pub sdc_bypasses: u64,
    pub stalls: StallBuckets,
}

impl TelemetryInterval {
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    pub fn ipc(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            self.instructions as f64 / c as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Sink
// ---------------------------------------------------------------------------

/// Everything collected by a sink, drained at end of run.
#[derive(Debug, Clone, Default)]
pub struct TelemetryOutput {
    pub intervals: Vec<TelemetryInterval>,
    pub events: Vec<TelemetryEvent>,
    /// Events evicted from the ring because it was full.
    pub dropped_events: u64,
    /// Events rejected by the severity filter.
    pub filtered_events: u64,
}

/// Where telemetry flows. The default methods are no-ops, so a sink can
/// implement only what it consumes; [`NullSink`] implements nothing.
pub trait TelemetrySink: Send {
    fn interval(&mut self, _interval: &TelemetryInterval) {}
    fn event(&mut self, _event: &TelemetryEvent) {}
    /// Drain whatever the sink collected. `None` for streaming sinks.
    fn take_output(&mut self) -> Option<TelemetryOutput> {
        None
    }
}

/// The no-op sink: every hook call vanishes.
pub struct NullSink;

impl TelemetrySink for NullSink {}

/// Collection parameters for [`Collector`] / [`TelemetryHandle::collector`].
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Snapshot cadence in traced instructions.
    pub interval_instructions: u64,
    /// Event-ring capacity (0 disables event retention entirely).
    pub event_capacity: usize,
    /// Minimum severity retained by the event ring.
    pub min_severity: Severity,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            interval_instructions: DEFAULT_INTERVAL_INSTRUCTIONS,
            event_capacity: DEFAULT_EVENT_CAPACITY,
            min_severity: Severity::Debug,
        }
    }
}

/// The standard in-memory sink: stores every interval, rings events.
pub struct Collector {
    intervals: Vec<TelemetryInterval>,
    ring: EventRing,
}

impl Collector {
    pub fn new(cfg: &TelemetryConfig) -> Self {
        Collector {
            intervals: Vec::new(),
            ring: EventRing::new(cfg.event_capacity, cfg.min_severity),
        }
    }
}

impl TelemetrySink for Collector {
    fn interval(&mut self, interval: &TelemetryInterval) {
        self.intervals.push(*interval);
    }

    fn event(&mut self, event: &TelemetryEvent) {
        self.ring.push(*event);
    }

    fn take_output(&mut self) -> Option<TelemetryOutput> {
        Some(TelemetryOutput {
            intervals: std::mem::take(&mut self.intervals),
            events: self.ring.drain(),
            dropped_events: self.ring.dropped,
            filtered_events: self.ring.filtered,
        })
    }
}

// ---------------------------------------------------------------------------
// Handle
// ---------------------------------------------------------------------------

/// The hook every simulator component holds. Cloning is cheap (an `Arc`
/// bump or a `None` copy); the disabled handle is the `Default` and
/// costs one branch per hook call.
#[derive(Clone, Default)]
pub struct TelemetryHandle {
    sink: Option<Arc<Mutex<Box<dyn TelemetrySink>>>>,
    /// Stamped onto events emitted through this handle.
    core: u32,
    interval_instructions: u64,
}

impl std::fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryHandle")
            .field("enabled", &self.enabled())
            .field("core", &self.core)
            .field("interval_instructions", &self.interval_instructions)
            .finish()
    }
}

impl TelemetryHandle {
    /// The zero-cost disabled handle (same as `Default`).
    pub fn disabled() -> Self {
        TelemetryHandle::default()
    }

    /// A handle backed by an in-memory [`Collector`].
    pub fn collector(cfg: &TelemetryConfig) -> Self {
        TelemetryHandle::with_sink(Box::new(Collector::new(cfg)), cfg.interval_instructions)
    }

    /// A handle backed by an arbitrary sink.
    pub fn with_sink(sink: Box<dyn TelemetrySink>, interval_instructions: u64) -> Self {
        TelemetryHandle {
            sink: Some(Arc::new(Mutex::new(sink))),
            core: 0,
            interval_instructions: interval_instructions.max(1),
        }
    }

    /// A clone of this handle that stamps `core` onto its events
    /// (multicore wiring; [`SHARED_CORE`] for shared components).
    pub fn for_core(&self, core: u32) -> Self {
        let mut h = self.clone();
        h.core = core;
        h
    }

    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    pub fn core(&self) -> u32 {
        self.core
    }

    /// Snapshot cadence in instructions (0 when disabled).
    pub fn interval_instructions(&self) -> u64 {
        if self.enabled() {
            self.interval_instructions
        } else {
            0
        }
    }

    /// Deliver an interval snapshot.
    pub fn interval(&self, interval: &TelemetryInterval) {
        if let Some(sink) = &self.sink {
            sink.lock().interval(interval);
        }
    }

    /// Deliver an event. The kind is built lazily so a disabled handle
    /// never constructs it.
    pub fn event(&self, cycle: u64, kind: impl FnOnce() -> EventKind) {
        if let Some(sink) = &self.sink {
            let ev = TelemetryEvent { cycle, core: self.core, kind: kind() };
            sink.lock().event(&ev);
        }
    }

    /// Drain the sink's collected output (post-run; `None` when disabled
    /// or when the sink streams).
    pub fn take_output(&self) -> Option<TelemetryOutput> {
        self.sink.as_ref().and_then(|s| s.lock().take_output())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: EventKind) -> TelemetryEvent {
        TelemetryEvent { cycle, core: 0, kind }
    }

    #[test]
    fn severity_orders_and_maps() {
        assert!(Severity::Debug < Severity::Info && Severity::Info < Severity::Warn);
        assert_eq!(EventKind::WatchdogTick.severity(), Severity::Warn);
        assert_eq!(EventKind::SdcBypass.severity(), Severity::Debug);
        assert_eq!(EventKind::DramRowConflict.severity(), Severity::Info);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut r = EventRing::new(2, Severity::Debug);
        r.push(ev(1, EventKind::SdcBypass));
        r.push(ev(2, EventKind::SdcBypass));
        r.push(ev(3, EventKind::SdcBypass));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped, 1);
        let drained = r.drain();
        assert_eq!(drained[0].cycle, 2, "oldest event is evicted first");
        assert_eq!(drained[1].cycle, 3);
    }

    #[test]
    fn ring_filters_below_min_severity() {
        let mut r = EventRing::new(8, Severity::Info);
        r.push(ev(1, EventKind::SdcBypass)); // Debug: filtered
        r.push(ev(2, EventKind::DramRowConflict)); // Info: kept
        r.push(ev(3, EventKind::WatchdogTick)); // Warn: kept
        assert_eq!(r.len(), 2);
        assert_eq!(r.filtered, 1);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn zero_capacity_ring_keeps_nothing() {
        let mut r = EventRing::new(0, Severity::Debug);
        r.push(ev(1, EventKind::SdcBypass));
        assert!(r.is_empty());
        assert_eq!(r.dropped, 1);
    }

    #[test]
    fn stall_buckets_charge_and_delta() {
        let mut s = StallBuckets::default();
        s.charge(StallTag::Core, 3);
        s.charge(StallTag::Mem, 2);
        s.charge(StallTag::Dram, 10);
        s.charge(StallTag::MshrFull, 4);
        assert_eq!(s.rob_full, 5);
        assert_eq!(s.dram_wait, 10);
        assert_eq!(s.mshr_full, 4);
        assert_eq!(s.attributed(), 19);
        let base = StallBuckets { rob_full: 1, mshr_full: 1, dram_wait: 1, busy: 99 };
        let d = s.delta_since(&base);
        assert_eq!(d, StallBuckets { rob_full: 4, mshr_full: 3, dram_wait: 9, busy: 0 });
    }

    #[test]
    fn interval_math() {
        let iv = TelemetryInterval {
            start_cycle: 100,
            end_cycle: 300,
            instructions: 100,
            l1d: LevelDelta { accesses: 50, hits: 40, misses: 10 },
            ..Default::default()
        };
        assert_eq!(iv.cycles(), 200);
        assert!((iv.ipc() - 0.5).abs() < 1e-12);
        assert!((iv.l1d.mpki(100) - 100.0).abs() < 1e-9);
        assert!((iv.l1d.miss_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(TelemetryInterval::default().ipc(), 0.0);
        assert_eq!(LevelDelta::default().mpki(0), 0.0);
    }

    #[test]
    fn dram_row_hit_rate() {
        let d = DramDelta { row_hits: 3, row_misses: 1, row_conflicts: 0, ..Default::default() };
        assert!((d.row_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(DramDelta::default().row_hit_rate(), 0.0);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = TelemetryHandle::disabled();
        assert!(!h.enabled());
        assert_eq!(h.interval_instructions(), 0);
        let mut built = false;
        h.event(1, || {
            built = true;
            EventKind::WatchdogTick
        });
        assert!(!built, "disabled handle must not construct events");
        h.interval(&TelemetryInterval::default());
        assert!(h.take_output().is_none());
    }

    #[test]
    fn collector_round_trips_intervals_and_events() {
        let h = TelemetryHandle::collector(&TelemetryConfig::default());
        assert!(h.enabled());
        assert_eq!(h.interval_instructions(), DEFAULT_INTERVAL_INSTRUCTIONS);
        h.interval(&TelemetryInterval { index: 0, end_cycle: 10, ..Default::default() });
        h.interval(&TelemetryInterval {
            index: 1,
            start_cycle: 10,
            end_cycle: 25,
            ..Default::default()
        });
        let h2 = h.for_core(3);
        h2.event(7, || EventKind::DramRowConflict);
        let out = h.take_output().expect("collector drains");
        assert_eq!(out.intervals.len(), 2);
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].core, 3, "for_core stamps the core id");
        assert_eq!(out.events[0].cycle, 7);
        assert_eq!(out.dropped_events, 0);
        // A second drain yields nothing new.
        assert_eq!(h.take_output().expect("still a collector").intervals.len(), 0);
    }
}
