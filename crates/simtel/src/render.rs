//! Terminal renderers for interval timelines: an ASCII chart for eyes,
//! CSV for spreadsheets. Both are deterministic functions of the
//! interval list.

use crate::TelemetryInterval;
use std::fmt::Write as _;

const BAR_WIDTH: usize = 40;

/// A proportional bar of `value` against `max`, `BAR_WIDTH` cells wide.
fn bar(value: f64, max: f64) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let cells = ((value / max) * BAR_WIDTH as f64).round() as usize;
    "#".repeat(cells.clamp(1, BAR_WIDTH))
}

/// Per-interval IPC and L1D MPKI bars, scaled to the run's maxima.
pub fn ascii_timeline(intervals: &[TelemetryInterval]) -> String {
    let mut out = String::new();
    if intervals.is_empty() {
        out.push_str("(no intervals)\n");
        return out;
    }
    let max_ipc = intervals.iter().map(TelemetryInterval::ipc).fold(0.0_f64, f64::max);
    let max_mpki = intervals.iter().map(|iv| iv.l1d.mpki(iv.instructions)).fold(0.0_f64, f64::max);
    let _ = writeln!(
        out,
        "{:>5} {:>14} {:>8} {:>8}  {:<w$}  {:<w$}",
        "intvl",
        "cycles",
        "ipc",
        "mpki",
        "ipc bar",
        "l1d-mpki bar",
        w = BAR_WIDTH
    );
    for iv in intervals {
        let ipc = iv.ipc();
        let mpki = iv.l1d.mpki(iv.instructions);
        let _ = writeln!(
            out,
            "{:>5} {:>14} {:>8.3} {:>8.1}  {:<w$}  {:<w$}",
            iv.index,
            format!("{}..{}", iv.start_cycle, iv.end_cycle),
            ipc,
            mpki,
            bar(ipc, max_ipc),
            bar(mpki, max_mpki),
            w = BAR_WIDTH
        );
    }
    out
}

/// CSV with one row per interval (header included).
pub fn csv_timeline(intervals: &[TelemetryInterval]) -> String {
    let mut out = String::from(
        "index,core,start_cycle,end_cycle,instructions,ipc,\
         l1d_mpki,sdc_mpki,l2c_mpki,llc_mpki,dram_row_hit_rate,\
         mshr_high_water,lp_sdc_routes,lp_hierarchy_routes,sdc_bypasses,\
         stall_rob_full,stall_mshr_full,stall_dram_wait,stall_busy\n",
    );
    for iv in intervals {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{},{},{},{},{},{}",
            iv.index,
            iv.core,
            iv.start_cycle,
            iv.end_cycle,
            iv.instructions,
            iv.ipc(),
            iv.l1d.mpki(iv.instructions),
            iv.sdc.mpki(iv.instructions),
            iv.l2c.mpki(iv.instructions),
            iv.llc.mpki(iv.instructions),
            iv.dram.row_hit_rate(),
            iv.mshr_high_water,
            iv.lp.sdc_routes,
            iv.lp.hierarchy_routes,
            iv.sdc_bypasses,
            iv.stalls.rob_full,
            iv.stalls.mshr_full,
            iv.stalls.dram_wait,
            iv.stalls.busy,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LevelDelta;

    fn intervals() -> Vec<TelemetryInterval> {
        vec![
            TelemetryInterval {
                index: 0,
                start_cycle: 0,
                end_cycle: 200,
                instructions: 100,
                l1d: LevelDelta { accesses: 40, hits: 30, misses: 10 },
                ..Default::default()
            },
            TelemetryInterval {
                index: 1,
                start_cycle: 200,
                end_cycle: 600,
                instructions: 100,
                l1d: LevelDelta { accesses: 40, hits: 38, misses: 2 },
                ..Default::default()
            },
        ]
    }

    #[test]
    fn ascii_renders_one_row_per_interval() {
        let s = ascii_timeline(&intervals());
        assert_eq!(s.lines().count(), 3, "header + two rows");
        assert!(s.contains("0..200"));
        assert!(s.contains('#'), "bars are drawn");
        assert_eq!(ascii_timeline(&[]), "(no intervals)\n");
    }

    #[test]
    fn ascii_scales_bars_to_the_maximum() {
        let s = ascii_timeline(&intervals());
        let rows: Vec<&str> = s.lines().skip(1).collect();
        // Interval 0 has the higher MPKI, so its bar must be the longer one.
        let hashes = |row: &str| row.rsplit("  ").next().map(|b| b.matches('#').count());
        assert!(hashes(rows[0]) > hashes(rows[1]));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = csv_timeline(&intervals());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("index,core,start_cycle"));
        let cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols, "ragged row: {row}");
        }
        assert!(lines[1].starts_with("0,0,0,200,100,0.500000"));
    }
}
