//! The `SSTATEv1` on-disk snapshot container.
//!
//! Layout (all little-endian):
//!
//! ```text
//! [8B magic "SSTATEv1"]
//! [u64 config_hash] [u64 trace_checksum] [u64 trace_pos]
//! [u64 payload_len] [payload bytes]
//! [u64 payload_len echo] [u64 FNV-1a checksum]   <- integrity footer
//! ```
//!
//! Same footer idiom as the `GPTRCv2` trace format: the length echo
//! catches truncation at a clean 8-byte boundary (where `read_exact`
//! alone cannot), and the checksum — FNV-1a over everything between the
//! magic and the footer — catches bit flips anywhere in the header or
//! payload. The header carries the snapshot's *identity*: the config hash
//! of the machine it was taken on, the checksum of the input trace it was
//! replaying, and the trace event index execution had reached, so a
//! loader can reject stale checkpoints before touching the payload.

use crate::StateError;
use std::io::{self, BufReader, BufWriter, Read, Write};

const MAGIC: &[u8; 8] = b"SSTATEv1";

/// Streaming FNV-1a (64-bit) — dependency-free, stable across platforms.
/// Public because checkpoint keys and trace identities are hashed with
/// the same function the container footer uses.
#[derive(Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// One decoded snapshot: identity header + opaque component payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Hash of the system configuration the snapshot was taken under.
    pub config_hash: u64,
    /// FNV-1a checksum of the input trace being replayed.
    pub trace_checksum: u64,
    /// Index of the next unconsumed trace event at snapshot time.
    pub trace_pos: u64,
    /// The serialized machine state ([`crate::StateSink`] output).
    pub payload: Vec<u8>,
}

impl Snapshot {
    /// Validate this snapshot's identity against the loader's expectation.
    pub fn check_identity(&self, config_hash: u64, trace_checksum: u64) -> Result<(), StateError> {
        if self.config_hash != config_hash {
            return Err(StateError::ConfigHashMismatch {
                expected: config_hash,
                found: self.config_hash,
            });
        }
        if self.trace_checksum != trace_checksum {
            return Err(StateError::TraceMismatch {
                expected: trace_checksum,
                found: self.trace_checksum,
            });
        }
        Ok(())
    }
}

/// Serialize a snapshot (with the integrity footer).
pub fn write_snapshot<W: Write>(snap: &Snapshot, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let mut sum = Fnv1a::new();
    let put = |w: &mut BufWriter<W>, sum: &mut Fnv1a, bytes: &[u8]| -> io::Result<()> {
        sum.update(bytes);
        w.write_all(bytes)
    };
    w.write_all(MAGIC)?;
    put(&mut w, &mut sum, &snap.config_hash.to_le_bytes())?;
    put(&mut w, &mut sum, &snap.trace_checksum.to_le_bytes())?;
    put(&mut w, &mut sum, &snap.trace_pos.to_le_bytes())?;
    put(&mut w, &mut sum, &(snap.payload.len() as u64).to_le_bytes())?;
    put(&mut w, &mut sum, &snap.payload)?;
    w.write_all(&(snap.payload.len() as u64).to_le_bytes())?;
    w.write_all(&sum.finish().to_le_bytes())?;
    w.flush()
}

/// Deserialize a snapshot, verifying magic, version, length echo, and
/// checksum. Identity (config/trace) is the caller's check — see
/// [`Snapshot::check_identity`].
pub fn read_snapshot<R: Read>(reader: R) -> Result<Snapshot, StateError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        // Any future SSTATEv2+ shares the 7-byte prefix; report it as a
        // version problem rather than generic corruption.
        if magic.starts_with(b"SSTATEv") {
            return Err(StateError::UnsupportedVersion);
        }
        return Err(StateError::BadMagic);
    }
    let mut sum = Fnv1a::new();
    let mut b8 = [0u8; 8];
    let mut get_u64 = |r: &mut BufReader<R>, sum: &mut Fnv1a| -> Result<u64, StateError> {
        r.read_exact(&mut b8)?;
        sum.update(&b8);
        Ok(u64::from_le_bytes(b8))
    };
    let config_hash = get_u64(&mut r, &mut sum)?;
    let trace_checksum = get_u64(&mut r, &mut sum)?;
    let trace_pos = get_u64(&mut r, &mut sum)?;
    let len = get_u64(&mut r, &mut sum)?;

    // Capacity hint is clamped: a corrupt header must not be able to
    // request an absurd up-front allocation — truncation is detected by
    // read_exact long before a real payload that large could exist.
    let mut payload = Vec::with_capacity((len as usize).min(1 << 24));
    let mut chunk = [0u8; 4096];
    let mut left = len;
    while left > 0 {
        let n = (left as usize).min(chunk.len());
        let buf = chunk.get_mut(..n).ok_or(StateError::Truncated)?;
        r.read_exact(buf)?;
        sum.update(buf);
        payload.extend_from_slice(buf);
        left -= n as u64;
    }

    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let footer_len = u64::from_le_bytes(b8);
    if footer_len != len {
        return Err(StateError::LengthMismatch { header: len, footer: footer_len });
    }
    r.read_exact(&mut b8)?;
    let expected = u64::from_le_bytes(b8);
    let found = sum.finish();
    if expected != found {
        return Err(StateError::ChecksumMismatch { expected, found });
    }
    Ok(Snapshot { config_hash, trace_checksum, trace_pos, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            config_hash: 0x1122_3344_5566_7788,
            trace_checksum: 0x99AA_BBCC_DDEE_FF00,
            trace_pos: 123_456,
            payload: (0..=255u8).cycle().take(5000).collect(),
        }
    }

    fn encoded(snap: &Snapshot) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(snap, &mut buf).expect("in-memory write");
        buf
    }

    #[test]
    fn round_trip_preserves_everything() {
        let snap = sample();
        let back = read_snapshot(&encoded(&snap)[..]).expect("decode");
        assert_eq!(snap, back);
    }

    #[test]
    fn empty_payload_round_trips() {
        let snap = Snapshot { payload: Vec::new(), ..sample() };
        assert_eq!(read_snapshot(&encoded(&snap)[..]).expect("decode"), snap);
    }

    #[test]
    fn rejects_bad_magic_and_future_version() {
        let mut buf = encoded(&sample());
        buf[0] ^= 0xFF;
        assert!(matches!(read_snapshot(&buf[..]), Err(StateError::BadMagic)));

        let mut buf = encoded(&sample());
        buf[7] = b'2'; // "SSTATEv2"
        assert!(matches!(read_snapshot(&buf[..]), Err(StateError::UnsupportedVersion)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let pristine = encoded(&sample());
        // Mid-header, mid-payload, event-boundary-like (whole footer), and
        // partial-footer truncations must all fail loudly.
        for cut in [4, 20, pristine.len() - 16, pristine.len() - 3] {
            let mut buf = pristine.clone();
            buf.truncate(cut);
            assert!(read_snapshot(&buf[..]).is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn rejects_single_bit_flip_anywhere() {
        let pristine = encoded(&sample());
        for &pos in &[8usize, 16, 30, 41, pristine.len() / 2, pristine.len() - 17] {
            let mut buf = pristine.clone();
            buf[pos] ^= 0x04;
            assert!(read_snapshot(&buf[..]).is_err(), "bit flip at byte {pos} must not decode");
        }
    }

    #[test]
    fn corrupt_length_cannot_force_huge_allocation() {
        let mut buf = encoded(&sample());
        buf[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_snapshot(&buf[..]).is_err());
    }

    #[test]
    fn identity_check_rejects_stale_snapshots() {
        let snap = sample();
        assert!(snap.check_identity(snap.config_hash, snap.trace_checksum).is_ok());
        assert!(matches!(
            snap.check_identity(snap.config_hash ^ 1, snap.trace_checksum),
            Err(StateError::ConfigHashMismatch { .. })
        ));
        assert!(matches!(
            snap.check_identity(snap.config_hash, snap.trace_checksum ^ 1),
            Err(StateError::TraceMismatch { .. })
        ));
    }
}
