#![forbid(unsafe_code)]
//! # simstate — checkpointable simulator state
//!
//! The snapshot subsystem behind crash-consistent sweeps and warmup
//! forking: a versioned binary container (`SSTATEv1`, same length-echo +
//! FNV-1a footer idiom as the `GPTRCv2` trace format), a small byte codec
//! the simulator components serialize themselves through, and a
//! file-backed [`store::CheckpointStore`] with atomic tmp+rename writes.
//!
//! Design rules, in priority order:
//!
//! 1. **Never trust a checkpoint.** Every load verifies magic, version,
//!    length echo, checksum, and the caller's config/trace identity before
//!    a single payload byte reaches a component. Failures come back as a
//!    typed [`StateError`], never a panic — a bad checkpoint degrades to a
//!    cold start.
//! 2. **Bit-identical resumption.** A component's `save_state`/`load_state`
//!    pair must capture every field that can influence future simulated
//!    behavior; anything excluded is an explicit approximation documented
//!    in DESIGN.md §11.
//! 3. **Deterministic I/O handling.** Transient write failures retry
//!    through [`retry_io`] — a bounded attempt ladder with no wall-clock
//!    backoff, so the simulator stack stays free of host-time reads.

pub mod codec;
pub mod container;
pub mod store;

pub use codec::{StateSink, StateSource};
pub use container::{read_snapshot, write_snapshot, Fnv1a, Snapshot};
pub use store::CheckpointStore;

use std::fmt;
use std::io;

/// How many times [`retry_io`] attempts an operation before surfacing the
/// last error. Shared by the manifest writer and the checkpoint store.
pub const IO_RETRY_ATTEMPTS: usize = 3;

/// Retry `op` up to `attempts` times, returning the first success or the
/// last error. Purely count-bounded — no sleeping, no clock reads — so
/// retried I/O stays deterministic apart from the host filesystem itself.
pub fn retry_io<T>(attempts: usize, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut last = io::Error::other("retry_io called with zero attempts");
    for _ in 0..attempts.max(1) {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// Why a snapshot failed to decode or validate. Mirrors the trace
/// decoder's taxonomy: I/O faults are separated from format corruption,
/// and staleness (identity mismatches) from both, so callers can choose
/// to warn-and-regenerate precisely.
#[derive(Debug)]
pub enum StateError {
    /// Underlying I/O failure (not a format problem).
    Io(io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// A recognized-but-unsupported snapshot version.
    UnsupportedVersion,
    /// The byte stream ended before the declared payload.
    Truncated,
    /// The footer's payload-length echo disagrees with the header.
    LengthMismatch { header: u64, footer: u64 },
    /// The footer checksum does not match the decoded bytes.
    ChecksumMismatch { expected: u64, found: u64 },
    /// The snapshot was taken under a different system configuration.
    ConfigHashMismatch { expected: u64, found: u64 },
    /// The snapshot was taken against a different input trace.
    TraceMismatch { expected: u64, found: u64 },
    /// A component section tag did not appear where expected.
    SectionMismatch { expected: [u8; 4], found: [u8; 4] },
    /// A restored collection's geometry disagrees with the live config.
    ShapeMismatch { what: &'static str, expected: u64, found: u64 },
    /// A decoded scalar is outside its legal domain (e.g. a bool byte
    /// that is neither 0 nor 1, or an unknown enum discriminant).
    BadValue { what: &'static str, found: u64 },
}

fn tag_str(tag: &[u8; 4]) -> String {
    tag.iter().map(|&b| if b.is_ascii_graphic() { b as char } else { '?' }).collect()
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            StateError::BadMagic => write!(f, "bad snapshot magic"),
            StateError::UnsupportedVersion => {
                write!(f, "unsupported snapshot format version (expected SSTATEv1)")
            }
            StateError::Truncated => write!(f, "snapshot is truncated"),
            StateError::LengthMismatch { header, footer } => write!(
                f,
                "snapshot length mismatch: header says {header} payload bytes, footer {footer}"
            ),
            StateError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: footer {expected:#018x}, computed {found:#018x}"
            ),
            StateError::ConfigHashMismatch { expected, found } => write!(
                f,
                "snapshot config mismatch: expected {expected:#018x}, found {found:#018x}"
            ),
            StateError::TraceMismatch { expected, found } => {
                write!(f, "snapshot trace mismatch: expected {expected:#018x}, found {found:#018x}")
            }
            StateError::SectionMismatch { expected, found } => write!(
                f,
                "snapshot section mismatch: expected {:?}, found {:?}",
                tag_str(expected),
                tag_str(found)
            ),
            StateError::ShapeMismatch { what, expected, found } => write!(
                f,
                "snapshot shape mismatch in {what}: expected {expected} elements, found {found}"
            ),
            StateError::BadValue { what, found } => {
                write!(f, "snapshot carries an illegal {what} value: {found}")
            }
        }
    }
}

impl std::error::Error for StateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StateError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StateError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StateError::Truncated
        } else {
            StateError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn retry_io_returns_first_success() {
        let calls = AtomicUsize::new(0);
        let out = retry_io(3, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok::<u32, io::Error>(7)
        });
        assert_eq!(out.ok(), Some(7));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn retry_io_retries_then_succeeds() {
        let calls = AtomicUsize::new(0);
        let out = retry_io(3, || {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(io::Error::other("transient"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.ok(), Some(42));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn retry_io_is_bounded_and_surfaces_last_error() {
        let calls = AtomicUsize::new(0);
        let out: io::Result<()> = retry_io(4, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::other("persistent"))
        });
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        assert!(out.is_err());
    }

    #[test]
    fn errors_render_with_context() {
        let e = StateError::ChecksumMismatch { expected: 1, found: 2 };
        assert!(e.to_string().contains("checksum"));
        let e = StateError::SectionMismatch { expected: *b"ROB_", found: *b"CCH_" };
        assert!(e.to_string().contains("ROB_"));
        let e = StateError::ShapeMismatch { what: "cache tags", expected: 64, found: 32 };
        assert!(e.to_string().contains("cache tags"));
    }
}
