//! File-backed checkpoint store with crash-consistent writes.
//!
//! Checkpoints are named by an opaque key string (the caller encodes
//! workload/scale/warmup-class identity into it); the store maps keys to
//! stable filenames, writes through a temporary file plus atomic rename
//! (a crash mid-write leaves the previous checkpoint intact, never a
//! half-written one), and validates every load against the caller's
//! config/trace identity before returning a payload.

use crate::container::{read_snapshot, write_snapshot, Fnv1a, Snapshot};
use crate::{retry_io, StateError, IO_RETRY_ATTEMPTS};
use std::fs;
use std::path::{Path, PathBuf};

/// A directory of `*.sstate` checkpoint files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointStore { dir: dir.into() }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The stable file path for `key`: a sanitized, truncated prefix of
    /// the key (for human inspection) plus its FNV-1a hash (for
    /// uniqueness), extension `.sstate`.
    pub fn path_for(&self, key: &str) -> PathBuf {
        let mut sum = Fnv1a::new();
        sum.update(key.as_bytes());
        let mut name: String = key
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '.' || c == '-' { c } else { '_' })
            .take(80)
            .collect();
        if name.is_empty() {
            name.push('_');
        }
        self.dir.join(format!("{name}-{:016x}.sstate", sum.finish()))
    }

    /// Load and fully validate the checkpoint for `key`.
    ///
    /// `Ok(None)` means no checkpoint exists (a cold start, not a fault).
    /// Any other failure — unreadable file, corrupt container, stale
    /// config/trace identity — comes back as `Err`, so the caller can
    /// warn and regenerate.
    pub fn load(
        &self,
        key: &str,
        config_hash: u64,
        trace_checksum: u64,
    ) -> Result<Option<Snapshot>, StateError> {
        let path = self.path_for(key);
        let file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StateError::Io(e)),
        };
        let snap = read_snapshot(file)?;
        snap.check_identity(config_hash, trace_checksum)?;
        Ok(Some(snap))
    }

    /// Persist a checkpoint for `key` crash-consistently: serialize to
    /// `<path>.tmp`, then atomically rename over the final path. Both the
    /// write and the rename go through the bounded deterministic
    /// [`retry_io`] ladder.
    pub fn save(&self, key: &str, snap: &Snapshot) -> Result<PathBuf, StateError> {
        let path = self.path_for(key);
        if let Some(parent) = path.parent() {
            retry_io(IO_RETRY_ATTEMPTS, || fs::create_dir_all(parent)).map_err(StateError::Io)?;
        }
        let tmp = path.with_extension("sstate.tmp");
        retry_io(IO_RETRY_ATTEMPTS, || {
            let file = fs::File::create(&tmp)?;
            write_snapshot(snap, &file)?;
            file.sync_all()
        })
        .map_err(StateError::Io)?;
        retry_io(IO_RETRY_ATTEMPTS, || fs::rename(&tmp, &path)).map_err(StateError::Io)?;
        Ok(path)
    }

    /// Delete the checkpoint for `key` (e.g. once its point completed and
    /// the mid-measurement snapshot is obsolete). Missing files are fine.
    pub fn remove(&self, key: &str) -> Result<(), StateError> {
        match fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StateError::Io(e)),
        }
    }

    /// Reap orphaned checkpoint files left behind by killed processes.
    ///
    /// Two classes of file are stale once no sweep is in flight:
    ///
    /// - `mid_*.sstate` — mid-measurement crash snapshots. A live sweep
    ///   deletes its own `mid|…` snapshot when the point completes, so
    ///   any that remain between sweeps belong to a process that died.
    ///   (Keys are sanitized by [`path_for`](Self::path_for), which maps
    ///   the `mid|` prefix to `mid_`.)
    /// - `*.sstate.tmp` — half-written staging files from a crash inside
    ///   [`save`](Self::save); the atomic rename never happened, so they
    ///   hold no checkpoint anyone can load.
    ///
    /// Warmup forks (`warm_*.sstate`) are deliberately spared: they are
    /// keyed by warmup class, stay valid across process lifetimes, and
    /// are the whole point of the persistent store. Callers must only
    /// invoke this when no sweep is using the directory (batch binaries
    /// after their sweeps finish; the daemon at startup and when its
    /// queue drains). Returns the number of files removed; a missing
    /// directory is a clean zero, and individual unlink races (another
    /// reaper got there first) are ignored.
    pub fn sweep_stale(&self) -> Result<usize, StateError> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(StateError::Io(e)),
        };
        let mut removed = 0;
        for entry in entries {
            let entry = entry.map_err(StateError::Io)?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = name.ends_with(".sstate.tmp")
                || (name.starts_with("mid_") && name.ends_with(".sstate"));
            if !stale {
                continue;
            }
            match fs::remove_file(entry.path()) {
                Ok(()) => removed += 1,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(StateError::Io(e)),
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("simstate-store-test-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::new(dir)
    }

    fn snap(pos: u64) -> Snapshot {
        Snapshot {
            config_hash: 0xAB,
            trace_checksum: 0xCD,
            trace_pos: pos,
            payload: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn save_load_round_trips() {
        let store = tmp_store("roundtrip");
        let key = "pr.kron|small|warmup=2000000|class=0123456789abcdef";
        assert!(matches!(store.load(key, 0xAB, 0xCD), Ok(None)), "cold start is Ok(None)");
        store.save(key, &snap(7)).expect("save");
        let back = store.load(key, 0xAB, 0xCD).expect("load").expect("present");
        assert_eq!(back, snap(7));
        // No stray tmp file left behind.
        assert!(!store.path_for(key).with_extension("sstate.tmp").exists());
    }

    #[test]
    fn keys_map_to_distinct_readable_files() {
        let store = tmp_store("names");
        let a = store.path_for("pr.kron|small|c=1");
        let b = store.path_for("pr.kron|small|c=2");
        assert_ne!(a, b);
        let name = a.file_name().and_then(|n| n.to_str()).expect("utf8 name");
        assert!(name.starts_with("pr.kron_small_c_1-"), "sanitized prefix, got {name}");
        assert!(name.ends_with(".sstate"));
    }

    #[test]
    fn stale_identity_is_rejected() {
        let store = tmp_store("stale");
        store.save("k", &snap(0)).expect("save");
        assert!(matches!(
            store.load("k", 0xAB ^ 1, 0xCD),
            Err(StateError::ConfigHashMismatch { .. })
        ));
        assert!(matches!(store.load("k", 0xAB, 0xCD ^ 1), Err(StateError::TraceMismatch { .. })));
    }

    #[test]
    fn corrupt_file_is_a_typed_error_not_a_panic() {
        let store = tmp_store("corrupt");
        store.save("k", &snap(0)).expect("save");
        let path = store.path_for("k");
        // Truncate mid-payload.
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 10]).expect("truncate");
        assert!(store.load("k", 0xAB, 0xCD).is_err());
        // Overwrite after a save replaces it cleanly.
        store.save("k", &snap(9)).expect("re-save");
        assert_eq!(store.load("k", 0xAB, 0xCD).expect("load").expect("present").trace_pos, 9);
    }

    #[test]
    fn sweep_stale_reaps_mids_and_tmps_but_spares_warm_forks() {
        let store = tmp_store("sweep-stale");
        store.save("warm|pr.kron|small|c=1", &snap(0)).expect("save warm");
        store.save("mid|pr.kron|small|c=1", &snap(3)).expect("save mid");
        store.save("mid|cc.urand|small|c=2", &snap(5)).expect("save mid 2");
        // A crash mid-save leaves a dangling staging file behind.
        let orphan_tmp = store.path_for("warm|bfs.web|small|c=3").with_extension("sstate.tmp");
        fs::write(&orphan_tmp, b"half-written").expect("write tmp");

        let removed = store.sweep_stale().expect("sweep");
        assert_eq!(removed, 3, "two mids + one tmp");
        assert!(!orphan_tmp.exists());
        assert!(matches!(store.load("mid|pr.kron|small|c=1", 0xAB, 0xCD), Ok(None)));
        assert!(matches!(store.load("mid|cc.urand|small|c=2", 0xAB, 0xCD), Ok(None)));
        let warm = store.load("warm|pr.kron|small|c=1", 0xAB, 0xCD).expect("load").expect("kept");
        assert_eq!(warm, snap(0));

        // Idempotent: a second pass finds nothing.
        assert_eq!(store.sweep_stale().expect("sweep again"), 0);
    }

    #[test]
    fn sweep_stale_on_missing_dir_is_a_clean_zero() {
        let store = tmp_store("sweep-missing");
        assert_eq!(store.sweep_stale().expect("sweep"), 0);
    }

    #[test]
    fn remove_is_idempotent() {
        let store = tmp_store("remove");
        store.save("k", &snap(0)).expect("save");
        assert!(store.remove("k").is_ok());
        assert!(store.remove("k").is_ok(), "second remove is fine");
        assert!(matches!(store.load("k", 0xAB, 0xCD), Ok(None)));
    }
}
