//! The snapshot byte codec: components serialize themselves into a
//! [`StateSink`] and restore from a [`StateSource`].
//!
//! The format is deliberately dumb — little-endian scalars and
//! length-prefixed slices, with 4-byte ASCII section tags between
//! components — because dumb is what stays bit-stable across releases of
//! the simulator. Geometry is validated on the way *in*: every slice
//! reader takes the length the live configuration expects and refuses a
//! stored length that disagrees, so a snapshot from a differently-shaped
//! machine can never silently scribble over a component.

use crate::StateError;

/// Append-only snapshot writer.
#[derive(Default)]
pub struct StateSink {
    buf: Vec<u8>,
}

impl StateSink {
    pub fn new() -> Self {
        StateSink::default()
    }

    /// The serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Open a component section (`expect_tag` checks it on restore).
    pub fn tag(&mut self, tag: &[u8; 4]) {
        self.buf.extend_from_slice(tag);
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// `None` encodes as a 0 flag byte, `Some(v)` as 1 followed by `v`.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.put_bool(false),
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x);
            }
        }
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed `u64` slice.
    pub fn put_u64s(&mut self, vals: &[u64]) {
        self.put_u64(vals.len() as u64);
        for &v in vals {
            self.put_u64(v);
        }
    }

    /// Length-prefixed `u32` slice.
    pub fn put_u32s(&mut self, vals: &[u32]) {
        self.put_u64(vals.len() as u64);
        for &v in vals {
            self.put_u32(v);
        }
    }

    /// Length-prefixed `bool` slice (one byte per element).
    pub fn put_bools(&mut self, vals: &[bool]) {
        self.put_u64(vals.len() as u64);
        for &v in vals {
            self.put_bool(v);
        }
    }
}

/// Cursor over a snapshot payload. Every read is bounds-checked and
/// domain-checked; failures surface as typed [`StateError`]s.
pub struct StateSource<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateSource<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        StateSource { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// A fully-consumed source is the expected end state of a restore; a
    /// trailing remainder means the writer and reader disagree on shape.
    pub fn expect_end(&self) -> Result<(), StateError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StateError::ShapeMismatch {
                what: "snapshot payload tail",
                expected: 0,
                found: self.remaining() as u64,
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        let end = self.pos.checked_add(n).ok_or(StateError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(StateError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    /// Check a component section tag written by [`StateSink::tag`].
    pub fn expect_tag(&mut self, expected: &[u8; 4]) -> Result<(), StateError> {
        let bytes = self.take(4)?;
        let found: [u8; 4] = bytes.try_into().map_err(|_| StateError::Truncated)?;
        if &found == expected {
            Ok(())
        } else {
            Err(StateError::SectionMismatch { expected: *expected, found })
        }
    }

    pub fn get_u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_bool(&mut self) -> Result<bool, StateError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StateError::BadValue { what: "bool", found: u64::from(other) }),
        }
    }

    pub fn get_u32(&mut self) -> Result<u32, StateError> {
        let bytes = self.take(4)?;
        let arr: [u8; 4] = bytes.try_into().map_err(|_| StateError::Truncated)?;
        Ok(u32::from_le_bytes(arr))
    }

    pub fn get_u64(&mut self) -> Result<u64, StateError> {
        let bytes = self.take(8)?;
        let arr: [u8; 8] = bytes.try_into().map_err(|_| StateError::Truncated)?;
        Ok(u64::from_le_bytes(arr))
    }

    pub fn get_i64(&mut self) -> Result<i64, StateError> {
        let bytes = self.take(8)?;
        let arr: [u8; 8] = bytes.try_into().map_err(|_| StateError::Truncated)?;
        Ok(i64::from_le_bytes(arr))
    }

    pub fn get_usize(&mut self) -> Result<usize, StateError> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| StateError::BadValue { what: "usize", found: u64::MAX })
    }

    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, StateError> {
        if self.get_bool()? {
            Ok(Some(self.get_u64()?))
        } else {
            Ok(None)
        }
    }

    fn check_len(&mut self, what: &'static str, expected: usize) -> Result<(), StateError> {
        let stored = self.get_u64()?;
        if stored != expected as u64 {
            return Err(StateError::ShapeMismatch {
                what,
                expected: expected as u64,
                found: stored,
            });
        }
        Ok(())
    }

    /// Restore a length-prefixed byte slice into `out`, requiring the
    /// stored length to match `out.len()` exactly.
    pub fn read_bytes_into(
        &mut self,
        what: &'static str,
        out: &mut [u8],
    ) -> Result<(), StateError> {
        self.check_len(what, out.len())?;
        out.copy_from_slice(self.take(out.len())?);
        Ok(())
    }

    /// Restore a length-prefixed `u64` slice into `out` (geometry-checked).
    pub fn read_u64s_into(
        &mut self,
        what: &'static str,
        out: &mut [u64],
    ) -> Result<(), StateError> {
        self.check_len(what, out.len())?;
        for slot in out.iter_mut() {
            *slot = self.get_u64()?;
        }
        Ok(())
    }

    /// Restore a length-prefixed byte slice whose length is dynamic but
    /// bounded (e.g. a wire-protocol string field). A stored length above
    /// `max` is rejected before any allocation happens, so a corrupt
    /// length prefix cannot ask for gigabytes.
    pub fn read_bytes_bounded(
        &mut self,
        what: &'static str,
        max: usize,
    ) -> Result<Vec<u8>, StateError> {
        let n = self.get_usize()?;
        if n > max {
            return Err(StateError::ShapeMismatch { what, expected: max as u64, found: n as u64 });
        }
        Ok(self.take(n)?.to_vec())
    }

    /// Restore a length-prefixed `u64` slice whose length is dynamic but
    /// bounded (e.g. MSHR occupancy, bounded by file capacity). A stored
    /// length above `max` is rejected.
    pub fn read_u64s_bounded(
        &mut self,
        what: &'static str,
        max: usize,
    ) -> Result<Vec<u64>, StateError> {
        let n = self.get_usize()?;
        if n > max {
            return Err(StateError::ShapeMismatch { what, expected: max as u64, found: n as u64 });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Restore a length-prefixed `u32` slice into `out` (geometry-checked).
    pub fn read_u32s_into(
        &mut self,
        what: &'static str,
        out: &mut [u32],
    ) -> Result<(), StateError> {
        self.check_len(what, out.len())?;
        for slot in out.iter_mut() {
            *slot = self.get_u32()?;
        }
        Ok(())
    }

    /// Restore a length-prefixed `bool` slice into `out` (geometry- and
    /// domain-checked).
    pub fn read_bools_into(
        &mut self,
        what: &'static str,
        out: &mut [bool],
    ) -> Result<(), StateError> {
        self.check_len(what, out.len())?;
        for slot in out.iter_mut() {
            *slot = self.get_bool()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = StateSink::new();
        w.tag(b"TST_");
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_opt_u64(None);
        w.put_opt_u64(Some(99));
        let bytes = w.into_bytes();

        let mut r = StateSource::new(&bytes);
        assert!(r.expect_tag(b"TST_").is_ok());
        assert_eq!(r.get_u8().ok(), Some(7));
        assert_eq!(r.get_bool().ok(), Some(true));
        assert_eq!(r.get_u32().ok(), Some(0xDEAD_BEEF));
        assert_eq!(r.get_u64().ok(), Some(u64::MAX - 1));
        assert_eq!(r.get_i64().ok(), Some(-42));
        assert_eq!(r.get_opt_u64().ok(), Some(None));
        assert_eq!(r.get_opt_u64().ok(), Some(Some(99)));
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn slices_round_trip_with_geometry_check() {
        let mut w = StateSink::new();
        w.put_u64s(&[1, 2, 3]);
        w.put_bools(&[true, false]);
        w.put_bytes(&[9, 8]);
        w.put_u32s(&[5, 6]);
        let bytes = w.into_bytes();

        let mut r = StateSource::new(&bytes);
        let mut u = [0u64; 3];
        assert!(r.read_u64s_into("u", &mut u).is_ok());
        assert_eq!(u, [1, 2, 3]);
        let mut b = [false; 2];
        assert!(r.read_bools_into("b", &mut b).is_ok());
        assert_eq!(b, [true, false]);
        let mut by = [0u8; 2];
        assert!(r.read_bytes_into("by", &mut by).is_ok());
        assert_eq!(by, [9, 8]);
        let mut u32s = [0u32; 2];
        assert!(r.read_u32s_into("u32s", &mut u32s).is_ok());
        assert_eq!(u32s, [5, 6]);

        // Wrong live geometry is rejected, not silently truncated.
        let mut r = StateSource::new(&bytes);
        let mut wrong = [0u64; 4];
        assert!(matches!(r.read_u64s_into("u", &mut wrong), Err(StateError::ShapeMismatch { .. })));
    }

    #[test]
    fn bounded_bytes_round_trip_and_reject_oversize() {
        let mut w = StateSink::new();
        w.put_bytes(b"hello");
        let bytes = w.into_bytes();

        let mut r = StateSource::new(&bytes);
        assert_eq!(r.read_bytes_bounded("s", 16).ok().as_deref(), Some(&b"hello"[..]));
        assert!(r.expect_end().is_ok());

        let mut r = StateSource::new(&bytes);
        assert!(matches!(
            r.read_bytes_bounded("s", 4),
            Err(StateError::ShapeMismatch { expected: 4, found: 5, .. })
        ));
    }

    #[test]
    fn truncation_and_bad_values_are_typed() {
        let mut r = StateSource::new(&[1, 2]);
        assert!(matches!(r.get_u64(), Err(StateError::Truncated)));

        let mut r = StateSource::new(&[3]);
        assert!(matches!(r.get_bool(), Err(StateError::BadValue { .. })));

        let mut r = StateSource::new(b"XYZ_rest");
        assert!(matches!(r.expect_tag(b"ROB_"), Err(StateError::SectionMismatch { .. })));
    }

    #[test]
    fn trailing_bytes_fail_expect_end() {
        let mut w = StateSink::new();
        w.put_u64(1);
        w.put_u64(2);
        let bytes = w.into_bytes();
        let mut r = StateSource::new(&bytes);
        assert_eq!(r.get_u64().ok(), Some(1));
        assert!(r.expect_end().is_err());
    }
}
