//! Triangle Counting — sorted-neighbor-list intersection (Table II:
//! push-only, no frontier, no property array).
//!
//! For every edge (u, v) with u < v, the kernel merge-intersects N(u) and
//! N(v), counting common neighbors w > v. The cursor into N(u) streams
//! sequentially, while hopping to each N(v) makes the second NA cursor the
//! irregular stream (whole rows land at unpredictable NA offsets).

use crate::input::KernelInput;
use crate::mem::{sid, AddressSpace};
use crate::mix;
use gpgraph::VertexId;
use simcore::trace::Tracer;

mod pc {
    pub const OA_U: u16 = 0x50;
    pub const NA_U: u16 = 0x51; // streaming cursor
    pub const OA_V: u16 = 0x52; // irregular row lookup
    pub const NA_V: u16 = 0x53; // irregular cursor
}

/// TC outcome.
#[derive(Debug)]
pub struct TcResult {
    pub triangles: u64,
    /// True if the kernel swept every edge (the simulation window can cut
    /// the sweep short; the count is then partial).
    pub complete: bool,
}

/// Count triangles. Requires sorted neighbor lists (the builder provides
/// them).
pub fn triangle_count<T: Tracer + ?Sized>(input: &KernelInput, asid: u8, t: &mut T) -> TcResult {
    let g = &input.csr;
    debug_assert!(g.is_sorted(), "triangle counting requires sorted neighbor lists");
    let n = g.num_vertices();

    let mut space = AddressSpace::new(asid);
    let oa = space.alloc(sid::OA, 8, n as u64 + 1);
    let na = space.alloc(sid::NA, 4, g.num_edges().max(1) as u64);

    let mut triangles = 0u64;
    let mut complete = true;
    'outer: for u in 0..n as VertexId {
        if t.done() {
            complete = false;
            break;
        }
        oa.load(t, pc::OA_U, u as u64);
        t.bubble(mix::VERTEX);
        let (ulo, uhi) = g.edge_range(u);
        for iu in ulo..uhi {
            na.load(t, pc::NA_U, iu);
            t.bubble(mix::SCAN);
            let v = g.neighbor_at(iu);
            if v <= u {
                continue;
            }
            if t.done() {
                complete = false;
                break 'outer;
            }
            // Jump to v's row: the irregular part.
            oa.load(t, pc::OA_V, v as u64);
            t.bubble(mix::SETUP);
            let (vlo, vhi) = g.edge_range(v);
            // Merge-intersect N(u) (> v) with N(v) (> v).
            let (mut a, mut b) = (iu + 1, vlo);
            while a < uhi && b < vhi {
                na.load(t, pc::NA_U, a);
                na.load(t, pc::NA_V, b);
                t.bubble(mix::MERGE_STEP);
                let (wa, wb) = (g.neighbor_at(a), g.neighbor_at(b));
                if wb <= v {
                    b += 1;
                    continue;
                }
                match wa.cmp(&wb) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        triangles += 1;
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
    }
    TcResult { triangles, complete }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::triangle_count_brute;
    use gpgraph::{build_csr, BuildOptions};
    use simcore::trace::{NullTracer, RecordingTracer};

    fn sym(edges: &[(u32, u32)], n: usize) -> KernelInput {
        KernelInput::from_symmetric(build_csr(
            n,
            edges,
            BuildOptions { symmetrize: true, ..Default::default() },
        ))
    }

    #[test]
    fn k3_has_one_triangle() {
        let input = sym(&[(0, 1), (1, 2), (0, 2)], 3);
        let r = triangle_count(&input, 0, &mut NullTracer::new());
        assert_eq!(r.triangles, 1);
        assert!(r.complete);
    }

    #[test]
    fn k4_has_four_triangles() {
        let input = sym(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4);
        let r = triangle_count(&input, 0, &mut NullTracer::new());
        assert_eq!(r.triangles, 4);
    }

    #[test]
    fn triangle_free_graph() {
        // A star has no triangles.
        let edges: Vec<(u32, u32)> = (1..20).map(|v| (0, v)).collect();
        let input = sym(&edges, 20);
        assert_eq!(triangle_count(&input, 0, &mut NullTracer::new()).triangles, 0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in [1, 7, 42] {
            let input = KernelInput::from_symmetric(gpgraph::gen::urand(120, 6, seed));
            let traced = triangle_count(&input, 0, &mut NullTracer::new());
            let brute = triangle_count_brute(&input.csr);
            assert_eq!(traced.triangles, brute, "seed {seed}");
        }
    }

    #[test]
    fn matches_brute_force_on_kron() {
        let input = KernelInput::from_symmetric(gpgraph::gen::kron(7, 4, 9));
        let traced = triangle_count(&input, 0, &mut NullTracer::new());
        assert_eq!(traced.triangles, triangle_count_brute(&input.csr));
    }

    #[test]
    fn window_truncation_reports_incomplete() {
        let input = KernelInput::from_symmetric(gpgraph::gen::kron(9, 8, 1));
        let mut rec = RecordingTracer::new(1000);
        let r = triangle_count(&input, 0, &mut rec);
        assert!(!r.complete);
    }
}
