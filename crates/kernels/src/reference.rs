//! Independent, uninstrumented reference implementations used by the test
//! suite to validate the traced kernels' computational results. These are
//! deliberately the *textbook* algorithms (dense PageRank, union-find,
//! Dijkstra with a binary heap, brute-force triangle counting), not the
//! GAP formulations the traced kernels use, so agreement is meaningful.

use gpgraph::{Csr, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// BFS depth of every vertex from `source` (`u32::MAX` = unreachable).
pub fn bfs_levels(g: &Csr, source: VertexId) -> Vec<u32> {
    let mut depth = vec![u32::MAX; g.num_vertices()];
    depth[source as usize] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if depth[v as usize] == u32::MAX {
                depth[v as usize] = depth[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    depth
}

/// Dense power-iteration PageRank (same damping/convergence semantics as
/// the paper's Algorithm 1).
pub fn pagerank_dense(g: &Csr, damping: f64, epsilon: f64, max_iters: u32) -> Vec<f64> {
    let n = g.num_vertices();
    let mut scores = vec![1.0 / n as f64; n];
    let base = (1.0 - damping) / n as f64;
    for _ in 0..max_iters {
        let mut contrib = vec![0.0; n];
        for (v, c) in contrib.iter_mut().enumerate() {
            let d = g.degree(v as VertexId);
            if d > 0 {
                *c = scores[v] / d as f64;
            }
        }
        let mut error = 0.0;
        let mut next = vec![0.0; n];
        for (u, nu) in next.iter_mut().enumerate() {
            let sum: f64 = g.neighbors(u as VertexId).iter().map(|&v| contrib[v as usize]).sum();
            *nu = base + damping * sum;
            error += (*nu - scores[u]).abs();
        }
        scores = next;
        if error < epsilon {
            break;
        }
    }
    scores
}

/// Connected components by union-find; returns a canonical label per
/// vertex (the minimum vertex id in its component).
pub fn cc_union_find(g: &Csr) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for (u, v) in g.edges() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru.max(rv) as usize] = ru.min(rv);
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Exact triangle count (each triangle counted once).
pub fn triangle_count_brute(g: &Csr) -> u64 {
    // For every edge (u, v) with u < v, count common neighbors w > v.
    let mut count = 0u64;
    for u in 0..g.num_vertices() as VertexId {
        for &v in g.neighbors(u) {
            if v <= u {
                continue;
            }
            for &w in g.neighbors(v) {
                if w <= v {
                    continue;
                }
                if g.neighbors(u).binary_search(&w).is_ok() {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Deterministic synthetic edge weight in `1..=31`, shared with the traced
/// SSSP kernel (the GAP generator attaches uniform random weights; ours are
/// a hash so both implementations agree without storing them).
#[inline]
pub fn edge_weight(u: VertexId, v: VertexId) -> u64 {
    let x = (u as u64) << 32 | v as u64;
    let h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 59) + 1 // 1..=32
}

/// Dijkstra shortest-path distances from `source` with [`edge_weight`]
/// weights (`u64::MAX` = unreachable).
pub fn dijkstra(g: &Csr, source: VertexId) -> Vec<u64> {
    let mut dist = vec![u64::MAX; g.num_vertices()];
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::from([Reverse((0u64, source))]);
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &v in g.neighbors(u) {
            let nd = d + edge_weight(u, v);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Textbook Brandes betweenness centrality (unweighted), restricted to the
/// given source set (GAP's approximate BC does the same).
pub fn bc_brandes(g: &Csr, sources: &[VertexId]) -> Vec<f64> {
    let n = g.num_vertices();
    let mut centrality = vec![0.0; n];
    for &s in sources {
        let mut stack = Vec::new();
        let mut preds: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0f64; n];
        let mut depth = vec![i64::MAX; n];
        sigma[s as usize] = 1.0;
        depth[s as usize] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            stack.push(u);
            for &v in g.neighbors(u) {
                if depth[v as usize] == i64::MAX {
                    depth[v as usize] = depth[u as usize] + 1;
                    queue.push_back(v);
                }
                if depth[v as usize] == depth[u as usize] + 1 {
                    sigma[v as usize] += sigma[u as usize];
                    preds[v as usize].push(u);
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        for &w in stack.iter().rev() {
            for &v in &preds[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w != s {
                centrality[w as usize] += delta[w as usize];
            }
        }
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgraph::{build_csr, BuildOptions};

    fn path_graph(n: usize) -> Csr {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        build_csr(n, &edges, BuildOptions { symmetrize: true, ..Default::default() })
    }

    #[test]
    fn bfs_levels_on_path() {
        let g = path_graph(5);
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_levels(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = build_csr(3, &[(0, 1)], BuildOptions { symmetrize: true, ..Default::default() });
        let d = bfs_levels(&g, 0);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn pagerank_sums_to_one_without_dangling_vertices() {
        // A ring has no dangling (zero-out-degree) vertices, so no rank
        // mass leaks and the scores sum to 1. (Kron graphs have isolated
        // vertices, which leak mass in GAP's formulation and ours alike.)
        let edges: Vec<(u32, u32)> = (0..128u32).map(|v| (v, (v + 1) % 128)).collect();
        let g = build_csr(128, &edges, BuildOptions { symmetrize: true, ..Default::default() });
        let s = pagerank_dense(&g, 0.85, 1e-12, 200);
        let sum: f64 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    }

    #[test]
    fn pagerank_symmetric_ring_is_uniform() {
        let edges: Vec<(u32, u32)> = (0..8u32).map(|v| (v, (v + 1) % 8)).collect();
        let g = build_csr(8, &edges, BuildOptions { symmetrize: true, ..Default::default() });
        let s = pagerank_dense(&g, 0.85, 1e-12, 200);
        for &x in &s {
            assert!((x - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn cc_two_components() {
        let g = build_csr(
            6,
            &[(0, 1), (1, 2), (3, 4)],
            BuildOptions { symmetrize: true, ..Default::default() },
        );
        let c = cc_union_find(&g);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
        assert_eq!(c[3], c[4]);
        assert_ne!(c[0], c[3]);
        assert_ne!(c[5], c[0]);
        assert_ne!(c[5], c[3]);
    }

    #[test]
    fn triangle_in_k3() {
        let g = build_csr(
            3,
            &[(0, 1), (1, 2), (0, 2)],
            BuildOptions { symmetrize: true, ..Default::default() },
        );
        assert_eq!(triangle_count_brute(&g), 1);
    }

    #[test]
    fn triangles_in_k4() {
        let edges = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let g = build_csr(4, &edges, BuildOptions { symmetrize: true, ..Default::default() });
        assert_eq!(triangle_count_brute(&g), 4);
    }

    #[test]
    fn dijkstra_on_path_accumulates_weights() {
        let g = path_graph(4);
        let d = dijkstra(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], edge_weight(0, 1));
        assert_eq!(d[2], edge_weight(0, 1) + edge_weight(1, 2));
    }

    #[test]
    fn edge_weights_in_declared_range() {
        for u in 0..50u32 {
            for v in 0..50u32 {
                let w = edge_weight(u, v);
                assert!((1..=32).contains(&w));
            }
        }
    }

    #[test]
    fn bc_path_center_is_highest() {
        let g = path_graph(5);
        let sources: Vec<u32> = (0..5).collect();
        let c = bc_brandes(&g, &sources);
        assert!(c[2] > c[1]);
        assert!(c[2] > c[3]);
        assert!(c[0] == 0.0 && c[4] == 0.0);
    }
}
