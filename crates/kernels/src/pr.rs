//! PageRank — pull-only, the paper's Algorithm 1.
//!
//! Two phases per iteration: a sequential sweep writing
//! `outgoing_contrib[u] = scores[u] / d+(u)`, then the pull sweep where
//! each vertex sums `outgoing_contrib[NA[i]]` over its incoming neighbors.
//! The contrib loads are the canonical cache-averse stream the paper's
//! introduction dissects; they carry T-OPT next-use hints.

use crate::input::KernelInput;
use crate::mem::{sid, AddressSpace};
use crate::mix;
use simcore::trace::Tracer;

/// Synthetic PCs, one per static access site.
mod pc {
    pub const SCORE_LOAD: u16 = 0x10;
    pub const DEGREE_LOAD: u16 = 0x11;
    pub const CONTRIB_STORE: u16 = 0x12;
    pub const OA_LOAD: u16 = 0x13;
    pub const NA_LOAD: u16 = 0x14;
    pub const CONTRIB_GATHER: u16 = 0x15; // the irregular one
    pub const SCORE_STORE: u16 = 0x16;
}

/// PageRank outcome.
#[derive(Debug)]
pub struct PrResult {
    pub scores: Vec<f64>,
    pub iterations: u32,
    pub converged: bool,
}

/// Run pull-PageRank, emitting the memory trace into `t`.
// simlint::allow(panic-path): vertex arrays are sized num_vertices and neighbor ids are validated by CSR construction
pub fn pagerank<T: Tracer + ?Sized>(
    input: &KernelInput,
    asid: u8,
    damping: f64,
    epsilon: f64,
    max_iters: u32,
    t: &mut T,
) -> PrResult {
    let g = &input.csc; // pull: incoming neighbors
    let out = &input.csr;
    let n = g.num_vertices();
    let oracle = input.oracle();

    let mut space = AddressSpace::new(asid);
    let oa = space.alloc(sid::OA, 8, n as u64 + 1);
    let na = space.alloc(sid::NA, 4, g.num_edges().max(1) as u64);
    let scores_arr = space.alloc(sid::PROP_B, 4, n as u64);
    let contrib_arr = space.alloc(sid::PROP_A, 4, n as u64);
    let degree_arr = space.alloc(sid::DEGREE, 4, n as u64);

    let base = (1.0 - damping) / n as f64;
    let mut scores = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];

    let mut iterations = 0;
    let mut converged = false;
    'outer: for iter in 0..max_iters {
        iterations = iter + 1;
        // Phase 1 (Algorithm 1, lines 4-6): sequential contrib sweep.
        #[allow(clippy::needless_range_loop)] // mirrors Algorithm 1's indexing
        for u in 0..n {
            if u % 4096 == 0 && t.done() {
                break 'outer;
            }
            scores_arr.load(t, pc::SCORE_LOAD, u as u64);
            degree_arr.load(t, pc::DEGREE_LOAD, u as u64);
            contrib_arr.store(t, pc::CONTRIB_STORE, u as u64);
            t.bubble(mix::VERTEX);
            let d = out.degree(u as u32);
            contrib[u] = if d > 0 { scores[u] / d as f64 } else { 0.0 };
        }
        // Phase 2 (lines 7-15): the pull sweep.
        let mut error = 0.0;
        #[allow(clippy::needless_range_loop)] // mirrors Algorithm 1's indexing
        for u in 0..n {
            if u % 1024 == 0 && t.done() {
                break 'outer;
            }
            oa.load(t, pc::OA_LOAD, u as u64);
            t.bubble(mix::VERTEX);
            let (lo, hi) = g.edge_range(u as u32);
            let mut sum = 0.0;
            for i in lo..hi {
                let v = g.neighbor_at(i);
                na.load(t, pc::NA_LOAD, i);
                // The connectivity-driven gather: cache-averse by nature.
                contrib_arr.load_hinted(
                    t,
                    pc::CONTRIB_GATHER,
                    v as u64,
                    oracle.hint(iter, i as u32, v),
                );
                t.bubble(mix::EDGE);
                sum += contrib[v as usize];
            }
            scores_arr.store(t, pc::SCORE_STORE, u as u64);
            t.bubble(mix::UPDATE);
            let new_score = base + damping * sum;
            error += (new_score - scores[u]).abs();
            scores[u] = new_score;
        }
        if error < epsilon {
            converged = true;
            break;
        }
    }
    PrResult { scores, iterations, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::pagerank_dense;
    use simcore::trace::{NullTracer, RecordingTracer};

    fn small_input() -> KernelInput {
        KernelInput::from_symmetric(gpgraph::gen::kron(8, 4, 11))
    }

    #[test]
    fn matches_dense_reference() {
        let input = small_input();
        let mut t = NullTracer::new();
        let result = pagerank(&input, 0, 0.85, 1e-9, 100, &mut t);
        let reference = pagerank_dense(&input.csr, 0.85, 1e-9, 100);
        for (a, b) in result.scores.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!(result.converged);
    }

    #[test]
    fn trace_contains_irregular_gathers() {
        let input = small_input();
        let mut rec = RecordingTracer::new(200_000);
        pagerank(&input, 0, 0.85, 1e-9, 3, &mut rec);
        let trace = rec.finish();
        let gathers =
            trace.events.iter().filter(|e| e.is_mem() && e.pc == pc::CONTRIB_GATHER).count();
        // One gather per edge per iteration (window permitting).
        assert!(gathers > input.num_edges() / 2, "gathers = {gathers}");
        // Most gathers carry oracle hints.
        let hinted = trace
            .events
            .iter()
            .filter(|e| e.is_mem() && e.pc == pc::CONTRIB_GATHER && e.next_use != u32::MAX)
            .count();
        assert!(hinted > gathers / 2, "hinted = {hinted} of {gathers}");
    }

    #[test]
    fn oracle_hints_predict_the_true_next_access() {
        // Strong end-to-end oracle check: within a recorded PR trace, each
        // hinted gather's next_use must equal the hinted-access index at
        // which the same element is next accessed.
        let input = small_input();
        let mut rec = RecordingTracer::new(500_000);
        pagerank(&input, 0, 0.85, 1e-9, 3, &mut rec);
        let trace = rec.finish();

        use std::collections::HashMap;
        let hinted: Vec<(u64, u32)> = trace
            .events
            .iter()
            .filter(|e| e.is_mem() && e.pc == pc::CONTRIB_GATHER)
            .map(|e| (e.addr, e.next_use))
            .collect();
        let mut next_seen: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, (addr, _)) in hinted.iter().enumerate() {
            next_seen.entry(*addr).or_default().push(i as u32);
        }
        let mut checked = 0;
        for (i, (addr, hint)) in hinted.iter().enumerate() {
            if *hint == u32::MAX {
                continue;
            }
            let positions = &next_seen[addr];
            let idx = positions.partition_point(|&p| p <= i as u32);
            if let Some(&actual_next) = positions.get(idx) {
                // Hints count hinted accesses starting at the oracle's own
                // origin; allow the off-by-one between "position" and
                // "count" conventions.
                assert!(
                    hint.abs_diff(actual_next) <= 1,
                    "access {i} to {addr:#x}: hint {hint}, actual next {actual_next}"
                );
                checked += 1;
            }
            // else: next access fell outside the window - unverifiable.
        }
        assert!(checked > 1000, "only {checked} hints were verifiable");
    }

    #[test]
    fn window_limits_respected() {
        let input = small_input();
        let mut rec = RecordingTracer::new(10_000);
        pagerank(&input, 0, 0.85, 1e-9, 100, &mut rec);
        let trace = rec.finish();
        assert!(trace.instructions <= 10_000 + 4096 * 16);
    }

    #[test]
    fn scores_sum_to_one_without_dangling_vertices() {
        // Dangling vertices leak rank mass (as in GAP); a ring has none.
        let edges: Vec<(u32, u32)> = (0..256u32).map(|v| (v, (v + 1) % 256)).collect();
        let g = gpgraph::build_csr(
            256,
            &edges,
            gpgraph::BuildOptions { symmetrize: true, ..Default::default() },
        );
        let input = KernelInput::from_symmetric(g);
        let result = pagerank(&input, 0, 0.85, 1e-12, 200, &mut NullTracer::new());
        let sum: f64 = result.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    }
}
