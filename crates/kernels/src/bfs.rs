//! Breadth-First Search — direction-optimizing (push & pull), as the GAP
//! implementation referenced in Table II.
//!
//! Push steps pop vertices from the frontier queue and probe
//! `parent[NA[i]]` (irregular); when the frontier grows past a threshold
//! the kernel switches to pull steps that scan unvisited vertices and test
//! frontier membership through incoming edges via the per-vertex depth
//! array (`depth[u] == level - 1`), as bitmap-free direction-optimizing
//! BFS implementations do — keeping the pull phase's irregular stream at
//! the full 4 B-per-vertex footprint of Table II.

use crate::input::KernelInput;
use crate::mem::{sid, AddressSpace};
use crate::mix;
use gpgraph::VertexId;
use simcore::trace::Tracer;

mod pc {
    pub const QUEUE_POP: u16 = 0x20;
    pub const OA_LOAD: u16 = 0x21;
    pub const NA_LOAD: u16 = 0x22;
    pub const PARENT_PROBE: u16 = 0x23; // irregular
    pub const PARENT_STORE: u16 = 0x24;
    pub const QUEUE_PUSH: u16 = 0x25;
    pub const PARENT_SCAN: u16 = 0x26; // pull: sequential parent scan
    pub const OA_IN_LOAD: u16 = 0x27;
    pub const NA_IN_LOAD: u16 = 0x28;
    pub const DEPTH_PROBE: u16 = 0x29; // irregular (pull membership test)
}

/// Unvisited marker in the parent array.
pub const UNVISITED: i64 = -1;

/// BFS outcome: parent tree and depth of each vertex.
#[derive(Debug)]
pub struct BfsResult {
    pub parent: Vec<i64>,
    pub depth: Vec<u32>,
    pub reached: usize,
}

/// Frontier fraction above which the kernel switches push -> pull.
const PULL_THRESHOLD: f64 = 0.05;

/// Run direction-optimizing BFS from `source`.
// simlint::allow(panic-path): vertex arrays are sized num_vertices and neighbor ids are validated by CSR construction
pub fn bfs<T: Tracer + ?Sized>(
    input: &KernelInput,
    asid: u8,
    source: VertexId,
    t: &mut T,
) -> BfsResult {
    let g = &input.csr;
    let gin = &input.csc;
    let n = g.num_vertices();

    let mut space = AddressSpace::new(asid);
    let oa = space.alloc(sid::OA, 8, n as u64 + 1);
    let na = space.alloc(sid::NA, 4, g.num_edges().max(1) as u64);
    let oa_in = space.alloc(sid::OA, 8, n as u64 + 1);
    let na_in = space.alloc(sid::NA, 4, gin.num_edges().max(1) as u64);
    let parent_arr = space.alloc(sid::PROP_A, 4, n as u64);
    let depth_arr = space.alloc(sid::PROP_A, 4, n as u64);
    let queue_arr = space.alloc(sid::FRONTIER, 4, n as u64);

    let mut parent = vec![UNVISITED; n];
    let mut depth = vec![u32::MAX; n];
    let mut frontier = vec![source];
    parent[source as usize] = source as i64;
    depth[source as usize] = 0;
    let mut reached = 1usize;
    let mut level = 0u32;

    'outer: while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        if (frontier.len() as f64) < PULL_THRESHOLD * n as f64 {
            // Push step.
            for (qi, &u) in frontier.iter().enumerate() {
                if qi % 512 == 0 && t.done() {
                    break 'outer;
                }
                queue_arr.load(t, pc::QUEUE_POP, qi as u64);
                oa.load(t, pc::OA_LOAD, u as u64);
                t.bubble(mix::VERTEX);
                let (lo, hi) = g.edge_range(u);
                for i in lo..hi {
                    na.load(t, pc::NA_LOAD, i);
                    let v = g.neighbor_at(i);
                    parent_arr.load(t, pc::PARENT_PROBE, v as u64);
                    t.bubble(mix::EDGE);
                    if parent[v as usize] == UNVISITED {
                        parent[v as usize] = u as i64;
                        depth[v as usize] = level;
                        parent_arr.store(t, pc::PARENT_STORE, v as u64);
                        queue_arr.store(t, pc::QUEUE_PUSH, next.len() as u64);
                        t.bubble(mix::UPDATE);
                        next.push(v);
                        reached += 1;
                    }
                }
            }
        } else {
            // Pull step: scan unvisited vertices; membership = depth test.
            let in_frontier: Vec<bool> = {
                let mut bm = vec![false; n];
                for &u in &frontier {
                    bm[u as usize] = true;
                }
                bm
            };
            for v in 0..n as VertexId {
                if v % 1024 == 0 && t.done() {
                    break 'outer;
                }
                parent_arr.load(t, pc::PARENT_SCAN, v as u64);
                t.bubble(mix::SCAN);
                if parent[v as usize] != UNVISITED {
                    continue;
                }
                oa_in.load(t, pc::OA_IN_LOAD, v as u64);
                t.bubble(mix::VERTEX);
                let (lo, hi) = gin.edge_range(v);
                for i in lo..hi {
                    na_in.load(t, pc::NA_IN_LOAD, i);
                    let u = gin.neighbor_at(i);
                    depth_arr.load(t, pc::DEPTH_PROBE, u as u64);
                    t.bubble(mix::EDGE);
                    if in_frontier[u as usize] {
                        parent[v as usize] = u as i64;
                        depth[v as usize] = level;
                        parent_arr.store(t, pc::PARENT_STORE, v as u64);
                        t.bubble(mix::UPDATE);
                        next.push(v);
                        reached += 1;
                        break;
                    }
                }
            }
        }
        frontier = next;
    }

    BfsResult { parent, depth, reached }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::bfs_levels;
    use simcore::trace::{NullTracer, RecordingTracer};

    fn check_against_reference(input: &KernelInput, source: VertexId) {
        let result = bfs(input, 0, source, &mut NullTracer::new());
        let reference = bfs_levels(&input.csr, source);
        for v in 0..input.num_vertices() {
            let ref_depth = reference[v];
            if ref_depth == u32::MAX {
                assert_eq!(result.parent[v], UNVISITED, "vertex {v} wrongly reached");
            } else {
                assert_eq!(result.depth[v], ref_depth, "depth mismatch at {v}");
                if v as u32 != source {
                    // Parent must be one level closer.
                    let p = result.parent[v] as usize;
                    assert_eq!(reference[p], ref_depth - 1, "bad parent at {v}");
                }
            }
        }
    }

    #[test]
    fn matches_reference_on_kron() {
        let input = KernelInput::from_symmetric(gpgraph::gen::kron(9, 4, 21));
        let source = input.default_source();
        check_against_reference(&input, source);
    }

    #[test]
    fn matches_reference_on_road_like() {
        // High-diameter graph exercises many levels and the push path.
        let input = KernelInput::from_symmetric(gpgraph::gen::road(32, 0.95, 30, 3));
        check_against_reference(&input, 0);
    }

    #[test]
    fn pull_phase_engages_on_dense_graph() {
        // Dense graph: frontier explodes after one level, triggering pull.
        let input = KernelInput::from_symmetric(gpgraph::gen::urand(2000, 16, 5));
        let mut rec = RecordingTracer::new(10_000_000);
        bfs(&input, 0, input.default_source(), &mut rec);
        let trace = rec.finish();
        let pull_probes =
            trace.events.iter().filter(|e| e.is_mem() && e.pc == pc::DEPTH_PROBE).count();
        assert!(pull_probes > 0, "pull phase never engaged");
    }

    #[test]
    fn reached_counts_component_size() {
        let input = KernelInput::from_symmetric(gpgraph::gen::urand(500, 8, 7));
        let result = bfs(&input, 0, input.default_source(), &mut NullTracer::new());
        let reachable = result.parent.iter().filter(|&&p| p != UNVISITED).count();
        assert_eq!(result.reached, reachable);
        assert!(result.reached > 400, "random graph should be mostly connected");
    }
}
