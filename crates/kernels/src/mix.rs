//! Instruction-mix constants: non-memory "bubble" instructions accompanying
//! each traced access site, approximating the compiled GAP kernels'
//! dynamic instruction mix (roughly 20-30% memory instructions, 9-12
//! instructions per processed edge).
//!
//! These were calibrated so the Baseline configuration reproduces Fig. 2's
//! MPKI regime: worst-case workloads (cc/pr on urand/kron/friendster)
//! around 80-100 L1D MPKI, locality-friendly ones (road, web) far lower,
//! with the suite average near the paper's 53.

/// Inner-loop work per edge (index arithmetic, compare, accumulate).
pub const EDGE: u32 = 8;

/// Outer-loop work per vertex (bounds loads, loop control, branches).
pub const VERTEX: u32 = 6;

/// A conditional update path (compare + store bookkeeping).
pub const UPDATE: u32 = 3;

/// One pointer-jump step in a chase loop.
pub const CHASE: u32 = 3;

/// Row-jump setup (offset fetch, cursor initialization).
pub const SETUP: u32 = 4;

/// A tight merge/filter step (the TC intersection inner loop).
pub const MERGE_STEP: u32 = 4;

/// A cheap scan step (frontier-membership test in pull BFS).
pub const SCAN: u32 = 2;
