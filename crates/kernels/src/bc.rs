//! Betweenness Centrality — Brandes' algorithm over a sampled source set,
//! as GAP's approximate BC does (Table II: push-mostly, frontier-based,
//! 8B + 4B property elements).
//!
//! Each source contributes a forward BFS that accumulates shortest-path
//! counts (`sigma`, the 8 B property) and a reverse dependency sweep
//! (`delta`). Both sweeps probe per-vertex properties through the NA — the
//! cache-averse stream.

use crate::input::KernelInput;
use crate::mem::{sid, AddressSpace};
use crate::mix;
use gpgraph::VertexId;
use simcore::trace::Tracer;

mod pc {
    pub const QUEUE_POP: u16 = 0x40;
    pub const OA_LOAD: u16 = 0x41;
    pub const NA_LOAD: u16 = 0x42;
    pub const DEPTH_PROBE: u16 = 0x43; // irregular
    pub const SIGMA_UPDATE: u16 = 0x44; // irregular (8B elements)
    pub const STACK_POP: u16 = 0x45;
    pub const DELTA_UPDATE: u16 = 0x46; // irregular
    pub const SCORE_STORE: u16 = 0x47;
}

/// BC outcome.
#[derive(Debug)]
pub struct BcResult {
    pub centrality: Vec<f64>,
    pub sources_processed: usize,
}

/// Run Brandes BC from `sources`.
// simlint::allow(panic-path): vertex arrays are sized num_vertices and neighbor ids are validated by CSR construction; sigma divisors are nonzero on traversed edges
pub fn betweenness<T: Tracer + ?Sized>(
    input: &KernelInput,
    asid: u8,
    sources: &[VertexId],
    t: &mut T,
) -> BcResult {
    let g = &input.csr;
    let n = g.num_vertices();

    let mut space = AddressSpace::new(asid);
    let oa = space.alloc(sid::OA, 8, n as u64 + 1);
    let na = space.alloc(sid::NA, 4, g.num_edges().max(1) as u64);
    // Table II: BC's irregular element is 8 B + 4 B (sigma + depth).
    let sigma_arr = space.alloc(sid::PROP_B, 8, n as u64);
    let depth_arr = space.alloc(sid::PROP_A, 4, n as u64);
    let delta_arr = space.alloc(sid::PROP_A, 8, n as u64);
    let queue_arr = space.alloc(sid::FRONTIER, 4, n as u64);
    let score_arr = space.alloc(sid::PROP_B, 8, n as u64);

    let mut centrality = vec![0.0f64; n];
    let mut sources_processed = 0;

    'outer: for &s in sources {
        let mut depth = vec![i64::MAX; n];
        let mut sigma = vec![0.0f64; n];
        let mut stack: Vec<VertexId> = Vec::new();
        depth[s as usize] = 0;
        sigma[s as usize] = 1.0;
        let mut queue = std::collections::VecDeque::from([s]);

        // Forward phase: BFS with path counting.
        while let Some(u) = queue.pop_front() {
            if stack.len().is_multiple_of(512) && t.done() {
                break 'outer;
            }
            queue_arr.load(t, pc::QUEUE_POP, stack.len() as u64 % n as u64);
            oa.load(t, pc::OA_LOAD, u as u64);
            t.bubble(mix::VERTEX);
            stack.push(u);
            let (lo, hi) = g.edge_range(u);
            for i in lo..hi {
                na.load(t, pc::NA_LOAD, i);
                let v = g.neighbor_at(i);
                depth_arr.load(t, pc::DEPTH_PROBE, v as u64);
                t.bubble(mix::EDGE);
                if depth[v as usize] == i64::MAX {
                    depth[v as usize] = depth[u as usize] + 1;
                    queue.push_back(v);
                }
                if depth[v as usize] == depth[u as usize] + 1 {
                    sigma_arr.load(t, pc::SIGMA_UPDATE, v as u64);
                    sigma_arr.store(t, pc::SIGMA_UPDATE, v as u64);
                    t.bubble(mix::UPDATE);
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }

        // Reverse phase: dependency accumulation.
        let mut delta = vec![0.0f64; n];
        for (si, &w) in stack.iter().enumerate().rev() {
            if si % 512 == 0 && t.done() {
                break 'outer;
            }
            queue_arr.load(t, pc::STACK_POP, si as u64 % n as u64);
            oa.load(t, pc::OA_LOAD, w as u64);
            t.bubble(mix::VERTEX);
            let (lo, hi) = g.edge_range(w);
            for i in lo..hi {
                na.load(t, pc::NA_LOAD, i);
                let v = g.neighbor_at(i);
                depth_arr.load(t, pc::DEPTH_PROBE, v as u64);
                t.bubble(mix::EDGE);
                // v is a predecessor of w on a shortest path.
                if depth[v as usize] == depth[w as usize] - 1 && sigma[w as usize] > 0.0 {
                    delta_arr.load(t, pc::DELTA_UPDATE, v as u64);
                    delta_arr.store(t, pc::DELTA_UPDATE, v as u64);
                    t.bubble(mix::UPDATE);
                    delta[v as usize] +=
                        sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                }
            }
            if w != s {
                score_arr.store(t, pc::SCORE_STORE, w as u64);
                t.bubble(mix::UPDATE);
                centrality[w as usize] += delta[w as usize];
            }
        }
        sources_processed += 1;
    }

    BcResult { centrality, sources_processed }
}

/// GAP-style deterministic source sample: the `k` highest-degree vertices
/// (deterministic and guaranteed non-isolated).
pub fn pick_sources(input: &KernelInput, k: usize) -> Vec<VertexId> {
    let mut by_degree: Vec<VertexId> = (0..input.num_vertices() as VertexId).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(input.csr.degree(v)));
    by_degree.truncate(k);
    by_degree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::bc_brandes;
    use simcore::trace::NullTracer;

    #[test]
    fn matches_reference_on_kron() {
        let input = KernelInput::from_symmetric(gpgraph::gen::kron(7, 3, 5));
        let sources = pick_sources(&input, 4);
        let r = betweenness(&input, 0, &sources, &mut NullTracer::new());
        let reference = bc_brandes(&input.csr, &sources);
        assert_eq!(r.sources_processed, 4);
        for (a, b) in r.centrality.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn matches_reference_on_path() {
        let edges: Vec<(u32, u32)> = (0..9u32).map(|i| (i, i + 1)).collect();
        let g = gpgraph::build_csr(
            10,
            &edges,
            gpgraph::BuildOptions { symmetrize: true, ..Default::default() },
        );
        let input = KernelInput::from_symmetric(g);
        let sources: Vec<u32> = (0..10).collect();
        let r = betweenness(&input, 0, &sources, &mut NullTracer::new());
        let reference = bc_brandes(&input.csr, &sources);
        for (a, b) in r.centrality.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        // Path centers dominate.
        assert!(r.centrality[5] > r.centrality[1]);
    }

    #[test]
    fn sources_are_distinct_high_degree() {
        let input = KernelInput::from_symmetric(gpgraph::gen::kron(8, 4, 2));
        let sources = pick_sources(&input, 8);
        assert_eq!(sources.len(), 8);
        let min_picked = sources.iter().map(|&s| input.csr.degree(s)).min().unwrap();
        // No unpicked vertex has higher degree than the lowest picked one.
        let max_unpicked = (0..input.num_vertices() as u32)
            .filter(|v| !sources.contains(v))
            .map(|v| input.csr.degree(v))
            .max()
            .unwrap();
        assert!(min_picked >= max_unpicked);
    }
}
