//! Simulated address-space layout and traced arrays.
//!
//! The instrumented kernels own real Rust buffers for their computation
//! *and* a [`TracedArray`] descriptor per data structure assigning it a
//! region of the simulated 48-bit physical address space. Every access to
//! OA/NA/property/frontier data emits one memory instruction with a
//! synthetic PC (one per static access site) and the structure's id, so
//! the memory system sees exactly the reference stream the algorithm
//! produces on real hardware.

use simcore::block::PAGE_BYTES;
use simcore::trace::{StructId, Tracer};

/// Structure ids shared across all kernels. The Expert Programmer router
/// (Fig. 13) and the T-OPT oracle key off these.
pub mod sid {
    use simcore::trace::StructId;

    pub const NONE: StructId = 0;
    /// Offset array (OA) of the working CSR/CSC.
    pub const OA: StructId = 1;
    /// Neighbors array (NA).
    pub const NA: StructId = 2;
    /// Primary per-vertex property array, indexed through the NA — the
    /// paper's canonical cache-averse structure (outgoing_contrib for PR,
    /// comp for CC, parent for BFS, dist for SSSP, ...).
    pub const PROP_A: StructId = 3;
    /// Secondary per-vertex property array (scores for PR, sigma for BC).
    pub const PROP_B: StructId = 4;
    /// Frontier queue / bucket array.
    pub const FRONTIER: StructId = 5;
    /// Frontier membership bitmap.
    pub const BITMAP: StructId = 6;
    /// Edge weights (SSSP), laid out parallel to the NA.
    pub const WEIGHTS: StructId = 7;
    /// Degree array (PR needs d+(u)).
    pub const DEGREE: StructId = 8;
}

/// Allocates disjoint, page-aligned regions of the simulated address space.
///
/// Each simulated core uses its own `asid`, keeping multi-programmed mixes
/// disjoint (as in the paper's Section IV-D methodology) while still
/// contending for shared LLC sets and DRAM banks.
#[derive(Debug)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// One terabyte of simulated space per address-space id.
    pub fn new(asid: u8) -> Self {
        AddressSpace { next: (u64::from(asid) << 40) + PAGE_BYTES }
    }

    /// Allocate a region for `len` elements of `elem_size` bytes, page
    /// aligned, with a guard page after it.
    pub fn alloc(&mut self, sid: StructId, elem_size: u64, len: u64) -> TracedArray {
        let base = self.next;
        let bytes = (elem_size * len).div_ceil(PAGE_BYTES) * PAGE_BYTES;
        self.next = base + bytes + PAGE_BYTES; // guard page
        TracedArray { base, elem_size, sid, len }
    }
}

/// A data structure's placement in the simulated address space.
#[derive(Debug, Clone, Copy)]
pub struct TracedArray {
    pub base: u64,
    pub elem_size: u64,
    pub sid: StructId,
    pub len: u64,
}

impl TracedArray {
    /// Simulated byte address of element `i`.
    #[inline]
    pub fn addr(&self, i: u64) -> u64 {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.base + i * self.elem_size
    }

    /// Emit a load of element `i` from access site `pc`.
    #[inline]
    pub fn load<T: Tracer + ?Sized>(&self, t: &mut T, pc: u16, i: u64) {
        t.load(pc, self.sid, self.addr(i));
    }

    /// Emit a load of element `i` carrying a T-OPT next-use hint.
    #[inline]
    pub fn load_hinted<T: Tracer + ?Sized>(&self, t: &mut T, pc: u16, i: u64, next_use: u32) {
        t.mem(simcore::trace::MemRef::read(pc, self.sid, self.addr(i)).with_next_use(next_use));
    }

    /// Emit a store to element `i` from access site `pc`.
    #[inline]
    pub fn store<T: Tracer + ?Sized>(&self, t: &mut T, pc: u16, i: u64) {
        t.store(pc, self.sid, self.addr(i));
    }

    pub fn bytes(&self) -> u64 {
        self.elem_size * self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::trace::RecordingTracer;

    #[test]
    fn allocations_are_disjoint_and_page_aligned() {
        let mut space = AddressSpace::new(0);
        let a = space.alloc(sid::OA, 8, 1000);
        let b = space.alloc(sid::NA, 4, 5000);
        assert_eq!(a.base % PAGE_BYTES, 0);
        assert_eq!(b.base % PAGE_BYTES, 0);
        assert!(a.base + a.bytes() < b.base, "regions must not overlap");
    }

    #[test]
    fn distinct_asids_never_collide() {
        let mut s0 = AddressSpace::new(0);
        let mut s1 = AddressSpace::new(1);
        let a = s0.alloc(sid::PROP_A, 4, 1 << 30);
        let b = s1.alloc(sid::PROP_A, 4, 1 << 30);
        assert!(a.addr(a.len - 1) < b.base);
    }

    #[test]
    fn element_addressing() {
        let mut space = AddressSpace::new(0);
        let a = space.alloc(sid::PROP_A, 4, 100);
        assert_eq!(a.addr(1) - a.addr(0), 4);
        assert_eq!(a.addr(99), a.base + 99 * 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[cfg(debug_assertions)] // `addr` bounds-checks via debug_assert! only
    fn oob_index_caught_in_debug() {
        let mut space = AddressSpace::new(0);
        let a = space.alloc(sid::PROP_A, 4, 10);
        let _ = a.addr(10);
    }

    #[test]
    fn loads_carry_sid_and_pc() {
        let mut space = AddressSpace::new(0);
        let a = space.alloc(sid::NA, 4, 10);
        let mut rec = RecordingTracer::new(100);
        a.load(&mut rec, 0x42, 3);
        a.store(&mut rec, 0x43, 4);
        a.load_hinted(&mut rec, 0x44, 5, 777);
        rec.bubble(1);
        let tr = rec.finish();
        assert_eq!(tr.events[0].pc, 0x42);
        assert_eq!(tr.events[0].sid, sid::NA);
        assert_eq!(tr.events[0].addr, a.addr(3));
        assert!(tr.events[1].is_write());
        assert_eq!(tr.events[2].next_use, 777);
    }
}
