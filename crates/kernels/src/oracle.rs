//! Next-reference oracle for T-OPT (Balaji et al.), derived from the graph
//! exactly as the transpose-based hardware proposal derives it.
//!
//! For kernels that sweep the neighbors array in order every iteration
//! (pull-PageRank, Shiloach–Vishkin CC), the position at which a vertex's
//! property element is next accessed is fully determined by the NA: it is
//! the next NA slot holding the same vertex id. This module precomputes
//! that successor chain once per graph; the instrumented kernels attach the
//! resulting positions as `MemRef::next_use` hints, giving the T-OPT LLC
//! replacement policy the same foreknowledge the original hardware gets
//! from the transpose.

use gpgraph::{Csr, VertexId};

/// Sentinel: no further occurrence.
const NONE: u32 = u32::MAX;

/// Per-edge-position successor table over a CSR's neighbors array.
#[derive(Debug)]
pub struct NextUseOracle {
    /// `next_pos[i]`: the next NA position referencing the same vertex as
    /// position `i` within the same sweep, or `NONE`.
    next_pos: Vec<u32>,
    /// `first_pos[v]`: the first NA position referencing `v`, or `NONE`.
    first_pos: Vec<u32>,
    /// NA length (= hinted accesses per sweep).
    edges: u32,
}

impl NextUseOracle {
    // simlint::allow(panic-path): positions are edge indexes < num_edges; tables are sized num_edges/num_vertices
    pub fn build(g: &Csr) -> Self {
        let e = g.num_edges();
        assert!(e < NONE as usize, "graph too large for 32-bit oracle positions");
        let mut next_pos = vec![NONE; e];
        let mut last_seen = vec![NONE; g.num_vertices()];
        // Backward scan threads each vertex's occurrences into a chain.
        for i in (0..e).rev() {
            let v = g.raw_neighbors()[i] as usize;
            next_pos[i] = last_seen[v];
            last_seen[v] = i as u32;
        }
        // After the backward scan, last_seen holds each vertex's first
        // occurrence.
        NextUseOracle { next_pos, first_pos: last_seen, edges: e as u32 }
    }

    /// Number of hinted accesses per sweep.
    pub fn sweep_len(&self) -> u32 {
        self.edges
    }

    /// Absolute next-use position (in hinted-access units) for the access
    /// at position `i` of sweep `sweep` to vertex `v`. Returns `u32::MAX`
    /// if the oracle position would overflow (effectively "far future").
    #[inline]
    // simlint::allow(panic-path): i < num_edges and v < num_vertices per kernel contract; tables are sized to match
    pub fn hint(&self, sweep: u32, i: u32, v: VertexId) -> u32 {
        let same_sweep = self.next_pos[i as usize];
        if same_sweep != NONE {
            return sweep
                .checked_mul(self.edges)
                .and_then(|b| b.checked_add(same_sweep))
                .unwrap_or(NONE);
        }
        // Next occurrence is the vertex's first slot of the next sweep.
        let first = self.first_pos[v as usize];
        if first == NONE {
            return NONE;
        }
        (sweep + 1).checked_mul(self.edges).and_then(|b| b.checked_add(first)).unwrap_or(NONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgraph::Csr;

    /// NA = [1, 2, 2, 0, 2] (the paper's Fig. 1 CSR).
    fn fig1() -> Csr {
        Csr::from_raw(vec![0, 2, 3, 4, 5], vec![1, 2, 2, 0, 2])
    }

    #[test]
    fn successor_chain_within_sweep() {
        let o = NextUseOracle::build(&fig1());
        // Vertex 2 appears at positions 1, 2, 4.
        assert_eq!(o.hint(0, 1, 2), 2);
        assert_eq!(o.hint(0, 2, 2), 4);
        // Position 4 is vertex 2's last occurrence: next sweep, first slot 1.
        assert_eq!(o.hint(0, 4, 2), 5 + 1);
    }

    #[test]
    fn single_occurrence_wraps_to_next_sweep() {
        let o = NextUseOracle::build(&fig1());
        // Vertex 0 appears only at position 3.
        assert_eq!(o.hint(0, 3, 0), 5 + 3);
        assert_eq!(o.hint(2, 3, 0), 3 * 5 + 3);
    }

    #[test]
    fn hints_are_strictly_in_the_future() {
        let g = gpgraph::gen::kron(8, 4, 3);
        let o = NextUseOracle::build(&g);
        for sweep in 0..3u32 {
            for i in 0..g.num_edges() as u32 {
                let v = g.raw_neighbors()[i as usize];
                let h = o.hint(sweep, i, v);
                let now = sweep * o.sweep_len() + i;
                assert!(h == u32::MAX || h > now, "hint {h} not after {now}");
            }
        }
    }

    #[test]
    fn overflow_saturates_to_far_future() {
        let o = NextUseOracle::build(&fig1());
        assert_eq!(o.hint(u32::MAX / 4, 3, 0), u32::MAX);
    }
}
