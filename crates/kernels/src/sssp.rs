//! Single-Source Shortest Paths — δ-stepping (Meyer & Sanders), per
//! Table II (push-only, frontier-based).
//!
//! Vertices live in distance buckets of width δ; the smallest non-empty
//! bucket is drained repeatedly, relaxing outgoing edges. Distance probes
//! `dist[NA[i]]` are the irregular stream; bucket queues stream
//! sequentially. Edge weights are deterministic hashes shared with the
//! Dijkstra reference (see `reference::edge_weight`).

use crate::input::KernelInput;
use crate::mem::{sid, AddressSpace};
use crate::mix;
use crate::reference::edge_weight;
use gpgraph::VertexId;
use simcore::trace::Tracer;

mod pc {
    pub const BUCKET_POP: u16 = 0x60;
    pub const OA_LOAD: u16 = 0x61;
    pub const NA_LOAD: u16 = 0x62;
    pub const WEIGHT_LOAD: u16 = 0x63;
    pub const DIST_PROBE: u16 = 0x64; // irregular
    pub const DIST_STORE: u16 = 0x65; // irregular
    pub const BUCKET_PUSH: u16 = 0x66;
}

/// SSSP outcome.
#[derive(Debug)]
pub struct SsspResult {
    pub dist: Vec<u64>,
    /// True if the algorithm ran to completion (not window-truncated).
    pub complete: bool,
}

/// Run δ-stepping SSSP from `source` with bucket width `delta`.
// simlint::allow(panic-path): vertex arrays are sized num_vertices; the bucket divisor delta is a nonzero kernel parameter
pub fn sssp<T: Tracer + ?Sized>(
    input: &KernelInput,
    asid: u8,
    source: VertexId,
    delta: u64,
    t: &mut T,
) -> SsspResult {
    assert!(delta > 0);
    let g = &input.csr;
    let n = g.num_vertices();

    let mut space = AddressSpace::new(asid);
    let oa = space.alloc(sid::OA, 8, n as u64 + 1);
    let na = space.alloc(sid::NA, 4, g.num_edges().max(1) as u64);
    let wa = space.alloc(sid::WEIGHTS, 4, g.num_edges().max(1) as u64);
    let dist_arr = space.alloc(sid::PROP_A, 4, n as u64);
    let bucket_arr = space.alloc(sid::FRONTIER, 4, n as u64);

    let mut dist = vec![u64::MAX; n];
    dist[source as usize] = 0;
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new()];
    buckets[0].push(source);
    let mut complete = true;
    // Bucket storage is a queue: its traffic is sequential positions, not
    // vertex-indexed.
    let mut pop_pos = 0u64;
    let mut push_pos = 0u64;

    let mut bi = 0usize;
    'outer: while bi < buckets.len() {
        // Drain bucket bi to empty (relaxations may refill it).
        while let Some(u) = buckets[bi].pop() {
            if t.done() {
                complete = false;
                break 'outer;
            }
            bucket_arr.load(t, pc::BUCKET_POP, pop_pos % n as u64);
            pop_pos += 1;
            t.bubble(mix::VERTEX);
            // Skip stale entries (vertex settled into an earlier bucket).
            let du = dist[u as usize];
            if du == u64::MAX || du / delta < bi as u64 {
                continue;
            }
            oa.load(t, pc::OA_LOAD, u as u64);
            t.bubble(mix::SETUP);
            let (lo, hi) = g.edge_range(u);
            for i in lo..hi {
                na.load(t, pc::NA_LOAD, i);
                wa.load(t, pc::WEIGHT_LOAD, i);
                let v = g.neighbor_at(i);
                dist_arr.load(t, pc::DIST_PROBE, v as u64);
                t.bubble(mix::EDGE);
                let nd = du + edge_weight(u, v);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    dist_arr.store(t, pc::DIST_STORE, v as u64);
                    let nb = (nd / delta) as usize;
                    if nb >= buckets.len() {
                        buckets.resize(nb + 1, Vec::new());
                    }
                    bucket_arr.store(t, pc::BUCKET_PUSH, push_pos % n as u64);
                    push_pos += 1;
                    t.bubble(mix::UPDATE);
                    buckets[nb].push(v);
                }
            }
        }
        bi += 1;
    }
    SsspResult { dist, complete }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::dijkstra;
    use simcore::trace::{NullTracer, RecordingTracer};

    fn check(input: &KernelInput, source: VertexId, delta: u64) {
        let r = sssp(input, 0, source, delta, &mut NullTracer::new());
        assert!(r.complete);
        let reference = dijkstra(&input.csr, source);
        assert_eq!(r.dist, reference);
    }

    #[test]
    fn matches_dijkstra_on_kron() {
        let input = KernelInput::from_symmetric(gpgraph::gen::kron(8, 4, 31));
        check(&input, input.default_source(), 8);
    }

    #[test]
    fn matches_dijkstra_on_road() {
        let input = KernelInput::from_symmetric(gpgraph::gen::road(16, 0.9, 20, 2));
        check(&input, 0, 4);
    }

    #[test]
    fn matches_dijkstra_across_delta_choices() {
        let input = KernelInput::from_symmetric(gpgraph::gen::urand(300, 6, 17));
        let reference = dijkstra(&input.csr, 5);
        for delta in [1, 2, 16, 1000] {
            let r = sssp(&input, 0, 5, delta, &mut NullTracer::new());
            assert_eq!(r.dist, reference, "delta = {delta}");
        }
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let g = gpgraph::build_csr(
            4,
            &[(0, 1)],
            gpgraph::BuildOptions { symmetrize: true, ..Default::default() },
        );
        let input = KernelInput::from_symmetric(g);
        let r = sssp(&input, 0, 0, 8, &mut NullTracer::new());
        assert_eq!(r.dist[2], u64::MAX);
        assert_eq!(r.dist[3], u64::MAX);
    }

    #[test]
    fn window_truncation_flagged() {
        let input = KernelInput::from_symmetric(gpgraph::gen::kron(10, 8, 3));
        let mut rec = RecordingTracer::new(500);
        let r = sssp(&input, 0, input.default_source(), 8, &mut rec);
        assert!(!r.complete);
    }
}
