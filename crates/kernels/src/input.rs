//! Shared kernel input: the graph in both directions plus the lazily-built
//! T-OPT next-use oracle.

use crate::oracle::NextUseOracle;
use gpgraph::{transpose, Csr, VertexId};
use std::sync::{Arc, OnceLock};

/// A graph prepared for kernel execution.
pub struct KernelInput {
    /// Outgoing-neighbor view (CSR).
    pub csr: Arc<Csr>,
    /// Incoming-neighbor view (CSC). Equal to `csr` for symmetric graphs.
    pub csc: Arc<Csr>,
    oracle: OnceLock<NextUseOracle>,
}

impl KernelInput {
    /// For a symmetric (undirected) graph the CSC *is* the CSR.
    pub fn from_symmetric(g: Csr) -> Self {
        let csr = Arc::new(g);
        KernelInput { csc: Arc::clone(&csr), csr, oracle: OnceLock::new() }
    }

    /// For a directed graph, compute the transpose.
    pub fn from_directed(g: Csr) -> Self {
        let csc = Arc::new(transpose(&g));
        KernelInput { csr: Arc::new(g), csc, oracle: OnceLock::new() }
    }

    /// Load a kernel input from a binary CSR cache file, treating the
    /// graph as symmetric (the suite convention). Every structural CSR
    /// invariant is validated during decode, so a corrupt or truncated
    /// cache file surfaces as a typed [`gpgraph::GraphIoError`] here —
    /// never as an out-of-bounds panic deep inside a kernel sweep.
    pub fn from_csr_file(path: &std::path::Path) -> Result<Self, gpgraph::GraphIoError> {
        Ok(KernelInput::from_symmetric(gpgraph::io::load(path)?))
    }

    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// The T-OPT next-use oracle over the CSC sweep order (built once).
    pub fn oracle(&self) -> &NextUseOracle {
        self.oracle.get_or_init(|| NextUseOracle::build(&self.csc))
    }

    /// Deterministic traversal source: the highest-out-degree vertex
    /// (guaranteed non-isolated on any graph with edges).
    pub fn default_source(&self) -> VertexId {
        (0..self.num_vertices() as VertexId).max_by_key(|&v| self.csr.degree(v)).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgraph::{build_csr, BuildOptions};

    #[test]
    fn symmetric_shares_storage() {
        let g = gpgraph::gen::urand(100, 4, 1);
        let input = KernelInput::from_symmetric(g);
        assert!(Arc::ptr_eq(&input.csr, &input.csc));
    }

    #[test]
    fn directed_builds_transpose() {
        let g = build_csr(3, &[(0, 1), (1, 2)], BuildOptions::default());
        let input = KernelInput::from_directed(g);
        assert_eq!(input.csc.neighbors(1), &[0]);
        assert_eq!(input.csc.neighbors(2), &[1]);
    }

    #[test]
    fn from_csr_file_round_trips_and_rejects_corruption() {
        let dir = std::env::temp_dir().join("gpkernels-input-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.csr");
        let g = gpgraph::gen::urand(64, 4, 7);
        gpgraph::io::save(&g, &path).unwrap();
        let input = KernelInput::from_csr_file(&path).unwrap();
        assert_eq!(input.num_vertices(), 64);

        // Corrupt a neighbor id: decoding must fail with a typed error.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(KernelInput::from_csr_file(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn default_source_is_max_degree() {
        let g = build_csr(
            4,
            &[(2, 0), (2, 1), (2, 3), (0, 1)],
            BuildOptions { symmetrize: true, ..Default::default() },
        );
        let input = KernelInput::from_symmetric(g);
        assert_eq!(input.default_source(), 2);
    }

    #[test]
    fn oracle_is_cached() {
        let input = KernelInput::from_symmetric(gpgraph::gen::urand(50, 2, 9));
        let a = input.oracle() as *const _;
        let b = input.oracle() as *const _;
        assert_eq!(a, b);
    }
}
