//! Unified kernel dispatch and the Table II metadata (execution style,
//! frontier use, irregular-element sizes, expert classification).

use crate::input::KernelInput;
use crate::mem::sid;
use crate::{bc, bfs, cc, pr, sssp, tc};
use simcore::trace::{StructId, Tracer};

/// The six GAP kernels (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kernel {
    Bc,
    Bfs,
    Cc,
    Pr,
    Tc,
    Sssp,
}

impl Kernel {
    pub const ALL: [Kernel; 6] =
        [Kernel::Bc, Kernel::Bfs, Kernel::Cc, Kernel::Pr, Kernel::Tc, Kernel::Sssp];

    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Bc => "bc",
            Kernel::Bfs => "bfs",
            Kernel::Cc => "cc",
            Kernel::Pr => "pr",
            Kernel::Tc => "tc",
            Kernel::Sssp => "sssp",
        }
    }

    /// Table II: execution style.
    pub fn execution_style(&self) -> &'static str {
        match self {
            Kernel::Bc => "Push-Mostly",
            Kernel::Bfs => "Push & Pull",
            Kernel::Cc => "Push-Mostly",
            Kernel::Pr => "Pull-Only",
            Kernel::Tc => "Push-Only",
            Kernel::Sssp => "Push-Only",
        }
    }

    /// Table II: does the kernel use a frontier?
    pub fn uses_frontier(&self) -> bool {
        matches!(self, Kernel::Bc | Kernel::Bfs | Kernel::Sssp)
    }

    /// Table II: size of the irregularly-accessed property elements.
    pub fn irreg_elem_size(&self) -> &'static str {
        match self {
            Kernel::Bc => "8B + 4B",
            _ => "4B",
        }
    }

    /// The Expert Programmer classification (Fig. 13): structure ids whose
    /// accesses a judicious offline analysis routes to the SDC. For every
    /// kernel the connectivity-indexed property array is cache-averse; TC
    /// has no property array, but its second NA cursor hops across rows,
    /// so the expert tags the NA itself.
    pub fn expert_averse_sids(&self) -> &'static [StructId] {
        match self {
            Kernel::Tc => &[sid::NA],
            Kernel::Bc => &[sid::PROP_A, sid::PROP_B],
            _ => &[sid::PROP_A],
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Default kernel parameters matching the GAP harness invocations.
pub mod params {
    pub const PR_DAMPING: f64 = 0.85;
    pub const PR_EPSILON: f64 = 1e-4;
    pub const PR_MAX_ITERS: u32 = 20;
    pub const SSSP_DELTA: u64 = 8;
    pub const BC_SOURCES: usize = 4;
}

/// Run a kernel end-to-end (or until the tracer window closes), emitting
/// its memory trace into `t`. Returns total instructions the kernel would
/// have liked to execute — callers that need kernel outputs use the typed
/// entry points in the per-kernel modules.
pub fn run_kernel<T: Tracer + ?Sized>(kernel: Kernel, input: &KernelInput, asid: u8, t: &mut T) {
    match kernel {
        Kernel::Pr => {
            pr::pagerank(
                input,
                asid,
                params::PR_DAMPING,
                params::PR_EPSILON,
                params::PR_MAX_ITERS,
                t,
            );
        }
        Kernel::Bfs => {
            bfs::bfs(input, asid, input.default_source(), t);
        }
        Kernel::Cc => {
            cc::connected_components(input, asid, t);
        }
        Kernel::Tc => {
            tc::triangle_count(input, asid, t);
        }
        Kernel::Sssp => {
            sssp::sssp(input, asid, input.default_source(), params::SSSP_DELTA, t);
        }
        Kernel::Bc => {
            let sources = bc::pick_sources(input, params::BC_SOURCES);
            bc::betweenness(input, asid, &sources, t);
        }
    }
}

/// Run a kernel repeatedly until the tracer window is exhausted — short
/// kernels (BFS on small graphs) wrap around so every trace fills its
/// window, like re-running the region of interest in SimPoint mode.
pub fn run_kernel_windowed<T: Tracer + ?Sized>(
    kernel: Kernel,
    input: &KernelInput,
    asid: u8,
    t: &mut T,
) {
    let mut guard = 0;
    while !t.done() && guard < 1000 {
        run_kernel(kernel, input, asid, t);
        guard += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::trace::RecordingTracer;

    #[test]
    fn all_kernels_produce_traces() {
        let input = KernelInput::from_symmetric(gpgraph::gen::kron(8, 4, 3));
        for kernel in Kernel::ALL {
            let mut rec = RecordingTracer::new(50_000);
            run_kernel_windowed(kernel, &input, 0, &mut rec);
            let trace = rec.finish();
            assert!(
                trace.instructions >= 50_000,
                "{kernel}: trace too short ({} instrs)",
                trace.instructions
            );
            assert!(trace.mem_refs() > 1000, "{kernel}: too few mem refs");
        }
    }

    #[test]
    fn table2_metadata() {
        assert_eq!(Kernel::Pr.execution_style(), "Pull-Only");
        assert!(!Kernel::Pr.uses_frontier());
        assert!(Kernel::Bfs.uses_frontier());
        assert!(Kernel::Sssp.uses_frontier());
        assert!(!Kernel::Tc.uses_frontier());
        assert_eq!(Kernel::Bc.irreg_elem_size(), "8B + 4B");
        assert_eq!(Kernel::Cc.irreg_elem_size(), "4B");
    }

    #[test]
    fn expert_sets_nonempty() {
        for kernel in Kernel::ALL {
            assert!(!kernel.expert_averse_sids().is_empty(), "{kernel}");
        }
    }

    #[test]
    fn kernel_names_unique() {
        let mut names: Vec<_> = Kernel::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn traces_are_deterministic() {
        let input = KernelInput::from_symmetric(gpgraph::gen::kron(8, 4, 3));
        let gen = || {
            let mut rec = RecordingTracer::new(20_000);
            run_kernel_windowed(Kernel::Cc, &input, 0, &mut rec);
            rec.finish()
        };
        let a = gen();
        let b = gen();
        assert_eq!(a.events, b.events);
    }
}
