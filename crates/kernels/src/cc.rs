//! Connected Components — Shiloach–Vishkin, as cited by the paper
//! (Table II: push-mostly, no frontier).
//!
//! Each round sweeps every edge, hooking the larger component label onto
//! the smaller (`comp[comp[v]] = comp[u]`), then compresses label chains by
//! pointer jumping. The `comp[NA[i]]` loads sweep the NA in order and carry
//! T-OPT hints; the hook/compress chases are irregular and unhinted.

use crate::input::KernelInput;
use crate::mem::{sid, AddressSpace};
use crate::mix;
use gpgraph::VertexId;
use simcore::trace::Tracer;

mod pc {
    pub const OA_LOAD: u16 = 0x30;
    pub const NA_LOAD: u16 = 0x31;
    pub const COMP_U: u16 = 0x32; // mostly sequential (outer loop)
    pub const COMP_V: u16 = 0x33; // irregular, hinted
    pub const COMP_HOOK: u16 = 0x34; // irregular store
    pub const COMP_JUMP: u16 = 0x35; // pointer chase
    pub const COMP_STORE: u16 = 0x36;
}

/// CC outcome: one label per vertex; two vertices are connected iff their
/// labels are equal.
#[derive(Debug)]
pub struct CcResult {
    pub comp: Vec<VertexId>,
    pub rounds: u32,
}

/// Run Shiloach–Vishkin connected components.
// simlint::allow(panic-path): vertex arrays are sized num_vertices and neighbor ids are validated by CSR construction
pub fn connected_components<T: Tracer + ?Sized>(
    input: &KernelInput,
    asid: u8,
    t: &mut T,
) -> CcResult {
    let g = &input.csr;
    let n = g.num_vertices();
    let oracle = input.oracle();

    let mut space = AddressSpace::new(asid);
    let oa = space.alloc(sid::OA, 8, n as u64 + 1);
    let na = space.alloc(sid::NA, 4, g.num_edges().max(1) as u64);
    let comp_arr = space.alloc(sid::PROP_A, 4, n as u64);

    let mut comp: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rounds = 0;

    'outer: loop {
        rounds += 1;
        let mut changed = false;
        // Hook phase: one NA sweep.
        for u in 0..n as VertexId {
            if u % 1024 == 0 && t.done() {
                break 'outer;
            }
            oa.load(t, pc::OA_LOAD, u as u64);
            comp_arr.load(t, pc::COMP_U, u as u64);
            t.bubble(mix::VERTEX);
            let (lo, hi) = g.edge_range(u);
            for i in lo..hi {
                let v = g.neighbor_at(i);
                na.load(t, pc::NA_LOAD, i);
                comp_arr.load_hinted(t, pc::COMP_V, v as u64, oracle.hint(rounds - 1, i as u32, v));
                t.bubble(mix::EDGE);
                let (cu, cv) = (comp[u as usize], comp[v as usize]);
                if cv < cu {
                    // Hook: comp[comp[u]] = comp[v].
                    comp_arr.store(t, pc::COMP_HOOK, cu as u64);
                    t.bubble(mix::UPDATE);
                    comp[cu as usize] = cv;
                    changed = true;
                }
            }
        }
        // Compress phase: pointer jumping.
        for v in 0..n as VertexId {
            if v % 2048 == 0 && t.done() {
                break 'outer;
            }
            comp_arr.load(t, pc::COMP_U, v as u64);
            t.bubble(mix::UPDATE);
            let mut c = comp[v as usize];
            while comp[c as usize] != c {
                comp_arr.load(t, pc::COMP_JUMP, c as u64);
                t.bubble(mix::CHASE);
                c = comp[c as usize];
            }
            comp_arr.store(t, pc::COMP_STORE, v as u64);
            comp[v as usize] = c;
        }
        if !changed {
            break;
        }
    }
    CcResult { comp, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::cc_union_find;
    use simcore::trace::{NullTracer, RecordingTracer};

    fn partitions_agree(a: &[VertexId], b: &[VertexId]) -> bool {
        // Same partition iff label-equality relations coincide. Check via
        // canonical mapping.
        use std::collections::HashMap;
        let mut map: HashMap<(u32, u32), ()> = HashMap::new();
        let mut fwd: HashMap<u32, u32> = HashMap::new();
        let mut rev: HashMap<u32, u32> = HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            match (fwd.get(&x), rev.get(&y)) {
                (None, None) => {
                    fwd.insert(x, y);
                    rev.insert(y, x);
                }
                (Some(&yy), _) if yy != y => return false,
                (_, Some(&xx)) if xx != x => return false,
                _ => {}
            }
            map.insert((x, y), ());
        }
        true
    }

    #[test]
    fn matches_union_find_on_kron() {
        let input = KernelInput::from_symmetric(gpgraph::gen::kron(9, 2, 13));
        let result = connected_components(&input, 0, &mut NullTracer::new());
        let reference = cc_union_find(&input.csr);
        assert!(partitions_agree(&result.comp, &reference));
    }

    #[test]
    fn matches_union_find_on_sparse_road() {
        // Sparse grid with deleted edges: many components.
        let input = KernelInput::from_symmetric(gpgraph::gen::road(32, 0.6, 10, 5));
        let result = connected_components(&input, 0, &mut NullTracer::new());
        let reference = cc_union_find(&input.csr);
        assert!(partitions_agree(&result.comp, &reference));
    }

    #[test]
    fn labels_are_fixpoints() {
        let input = KernelInput::from_symmetric(gpgraph::gen::urand(300, 4, 2));
        let result = connected_components(&input, 0, &mut NullTracer::new());
        for &c in &result.comp {
            assert_eq!(result.comp[c as usize], c, "label {c} is not a root");
        }
    }

    #[test]
    fn emits_hinted_na_sweep() {
        let input = KernelInput::from_symmetric(gpgraph::gen::kron(8, 4, 4));
        let mut rec = RecordingTracer::new(1_000_000);
        connected_components(&input, 0, &mut rec);
        let trace = rec.finish();
        let hinted = trace
            .events
            .iter()
            .filter(|e| e.is_mem() && e.pc == pc::COMP_V && e.next_use != u32::MAX)
            .count();
        assert!(hinted > 0);
    }
}
