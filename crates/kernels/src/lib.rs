#![forbid(unsafe_code)]
//! # gpkernels — the GAP benchmark kernels, instrumented
//!
//! The six graph kernels of Table II (BC, BFS, CC, PR, TC, SSSP),
//! implemented as *instrumented interpreters*: each run computes the real
//! algorithmic result (validated against independent references in
//! [`reference`](mod@crate::reference)) while emitting the exact memory-reference stream — one
//! synthetic PC per static access site, one structure id per data
//! structure, T-OPT next-use hints on the NA-order property sweeps — into
//! any [`simcore::Tracer`] (a recording tracer, or a simulation engine
//! directly).
//!
//! ```
//! use gpkernels::{Kernel, KernelInput, run_kernel};
//! use simcore::RecordingTracer;
//!
//! let input = KernelInput::from_symmetric(gpgraph::gen::kron(8, 4, 1));
//! let mut rec = RecordingTracer::new(100_000);
//! run_kernel(Kernel::Pr, &input, 0, &mut rec);
//! let trace = rec.finish();
//! assert!(trace.mem_refs() > 0);
//! ```

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod input;
pub mod mem;
pub mod mix;
pub mod oracle;
pub mod pr;
pub mod reference;
pub mod sssp;
pub mod tc;
pub mod workload;

pub use input::KernelInput;
pub use mem::{sid, AddressSpace, TracedArray};
pub use oracle::NextUseOracle;
pub use workload::{params, run_kernel, run_kernel_windowed, Kernel};
