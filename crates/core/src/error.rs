//! Structured error taxonomy for the simulation/runner path.
//!
//! The sweep executor (`gpworkloads::matrix`) and the input decoders
//! (`gpgraph::io`, `simcore::trace_io`) previously signalled failure by
//! panicking (`expect`, `from_raw` contract panics), which meant one
//! corrupt cache file or one pathological design point aborted a whole
//! characterization campaign. [`SimError`] is the typed replacement: every
//! fault a long sweep can hit has a variant carrying enough context to be
//! reported in a manifest record and acted on by `--resume`.
//!
//! Lower-layer crates keep their own narrow error types
//! (`gpgraph::GraphIoError`, `simcore::trace_io::TraceIoError`) so they
//! stay dependency-free; this taxonomy is where the runner path folds them
//! together (see the `From` impls the `gpworkloads` crate applies via
//! [`SimError::corrupt_graph`] / [`SimError::corrupt_trace`]).

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong while executing a sweep matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A matrix point's simulation panicked; the panic was contained and
    /// the rest of the sweep completed.
    PointPanicked {
        /// Workload name, e.g. `cc.urand`.
        workload: String,
        /// System/design label, e.g. `SDC+LP` or `tau=16`.
        system: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A matrix point exceeded its watchdog budget and was cut off.
    PointTimedOut {
        workload: String,
        system: String,
        /// Cycles simulated when the watchdog fired.
        cycles: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// A `fail_fast` sweep aborted on its first failure.
    Aborted {
        /// Description of the point that triggered the abort.
        point: String,
        /// The underlying failure, rendered.
        detail: String,
    },
    /// Reading or writing a run-manifest file failed.
    ManifestIo { path: PathBuf, detail: String },
    /// A run-manifest line could not be parsed during `--resume`.
    ManifestParse { path: PathBuf, line: usize, detail: String },
    /// A serialized trace failed decoding/validation.
    CorruptTrace { detail: String },
    /// A serialized graph failed decoding/validation.
    CorruptGraph { detail: String },
    /// A configuration was structurally invalid.
    InvalidConfig { detail: String },
}

impl SimError {
    /// Fold a graph-decoder error (rendered) into the taxonomy.
    pub fn corrupt_graph(detail: impl fmt::Display) -> Self {
        SimError::CorruptGraph { detail: detail.to_string() }
    }

    /// Fold a trace-decoder error (rendered) into the taxonomy.
    pub fn corrupt_trace(detail: impl fmt::Display) -> Self {
        SimError::CorruptTrace { detail: detail.to_string() }
    }

    /// Manifest I/O failure at `path`.
    pub fn manifest_io(path: impl Into<PathBuf>, detail: impl fmt::Display) -> Self {
        SimError::ManifestIo { path: path.into(), detail: detail.to_string() }
    }
}

impl From<simcore::config::ConfigError> for SimError {
    fn from(e: simcore::config::ConfigError) -> Self {
        SimError::InvalidConfig { detail: e.to_string() }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PointPanicked { workload, system, message } => {
                write!(f, "point {workload} on {system} panicked: {message}")
            }
            SimError::PointTimedOut { workload, system, cycles, limit } => write!(
                f,
                "point {workload} on {system} exceeded its watchdog budget \
                 ({cycles} cycles, limit {limit})"
            ),
            SimError::Aborted { point, detail } => {
                write!(f, "sweep aborted (fail-fast) at {point}: {detail}")
            }
            SimError::ManifestIo { path, detail } => {
                write!(f, "manifest I/O failed at {}: {detail}", path.display())
            }
            SimError::ManifestParse { path, line, detail } => {
                write!(f, "manifest {}:{line}: {detail}", path.display())
            }
            SimError::CorruptTrace { detail } => write!(f, "corrupt trace: {detail}"),
            SimError::CorruptGraph { detail } => write!(f, "corrupt graph: {detail}"),
            SimError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = SimError::PointPanicked {
            workload: "cc.urand".into(),
            system: "SDC+LP".into(),
            message: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("cc.urand") && s.contains("SDC+LP") && s.contains("boom"));

        let e = SimError::PointTimedOut {
            workload: "pr.kron".into(),
            system: "Baseline".into(),
            cycles: 1000,
            limit: 500,
        };
        assert!(e.to_string().contains("watchdog"));

        let e = SimError::manifest_io("/tmp/x.jsonl", "disk full");
        assert!(e.to_string().contains("x.jsonl") && e.to_string().contains("disk full"));
    }

    #[test]
    fn config_errors_fold_into_invalid_config() {
        let mut cfg = simcore::SystemConfig::baseline(1);
        cfg.llc.sets = 100;
        let e = SimError::from(cfg.validate().unwrap_err());
        match &e {
            SimError::InvalidConfig { detail } => {
                assert!(detail.contains("llc") && detail.contains("power of two"), "{detail}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn helpers_fold_lower_layer_errors() {
        assert_eq!(
            SimError::corrupt_trace("checksum mismatch"),
            SimError::CorruptTrace { detail: "checksum mismatch".into() }
        );
        assert!(SimError::corrupt_graph("bad magic").to_string().contains("bad magic"));
    }
}
