//! The SDCDir: the cache-directory extension that keeps the Side Data
//! Caches coherent with the conventional hierarchy (Section III-C, Fig. 6).
//!
//! Each entry holds a block tag, coherence state bits, and a sharer vector.
//! The SDCDir maintains *precise* information about SDC contents: a fill
//! into an SDC allocates an entry, and evicting an SDCDir entry requires
//! invalidating the block in every SDC that holds it (writing back if
//! dirty) — that back-invalidation is surfaced to the caller.

use crate::config::SdcDirConfig;
use serde::Serialize;

#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    block: u64,
    valid: bool,
    /// Sharer bit vector (one bit per core).
    sharers: u64,
    stamp: u64,
}

/// SDCDir statistics.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SdcDirStats {
    pub lookups: u64,
    pub hits: u64,
    pub inserts: u64,
    /// Entries displaced by capacity, each forcing SDC back-invalidation.
    pub capacity_evictions: u64,
}

/// The directory extension tracking SDC contents.
#[derive(Debug)]
pub struct SdcDir {
    sets: usize,
    ways: usize,
    entries: Vec<DirEntry>,
    clock: u64,
    pub latency: u64,
    pub stats: SdcDirStats,
}

impl SdcDir {
    pub fn new(cfg: &SdcDirConfig) -> Self {
        SdcDir {
            sets: cfg.sets,
            ways: cfg.ways,
            entries: vec![DirEntry::default(); cfg.sets * cfg.ways],
            clock: 0,
            latency: cfg.latency,
            stats: SdcDirStats::default(),
        }
    }

    fn set_of(&self, block: u64) -> usize {
        // simlint::allow(unit-mismatch): deliberate modulo set-indexing; entries store the full block address (no truncated tags), so any set count is alias-free.
        (block % self.sets as u64) as usize
    }

    fn find(&self, block: u64) -> Option<usize> {
        let base = self.set_of(block) * self.ways;
        (0..self.ways)
            .map(|w| base + w)
            .find(|&i| self.entries[i].valid && self.entries[i].block == block)
    }

    /// Is `block` recorded as present in any SDC?
    pub fn contains(&mut self, block: u64) -> bool {
        self.stats.lookups += 1;
        let hit = self.find(block).is_some();
        if hit {
            self.stats.hits += 1;
        }
        hit
    }

    /// Record that `core` filled `block` into its SDC. If the directory had
    /// to displace another entry, that entry's block is returned and the
    /// caller must invalidate it in all SDCs (Section III-C replacement
    /// rule).
    pub fn insert(&mut self, block: u64, core: usize) -> Option<u64> {
        self.clock += 1;
        self.stats.inserts += 1;
        if let Some(i) = self.find(block) {
            self.entries[i].sharers |= 1 << core;
            self.entries[i].stamp = self.clock;
            return None;
        }
        let base = self.set_of(block) * self.ways;
        let mut victim = base;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            let e = &self.entries[base + w];
            if !e.valid {
                victim = base + w;
                break;
            }
            if e.stamp < oldest {
                oldest = e.stamp;
                victim = base + w;
            }
        }
        let displaced = self.entries[victim].valid.then_some(self.entries[victim].block);
        if displaced.is_some() {
            self.stats.capacity_evictions += 1;
        }
        self.entries[victim] =
            DirEntry { block, valid: true, sharers: 1 << core, stamp: self.clock };
        displaced
    }

    /// Record that `core`'s SDC no longer holds `block` (capacity eviction
    /// in the SDC itself). The entry disappears when no sharer remains.
    pub fn remove(&mut self, block: u64, core: usize) {
        if let Some(i) = self.find(block) {
            self.entries[i].sharers &= !(1 << core);
            if self.entries[i].sharers == 0 {
                self.entries[i].valid = false;
            }
        }
    }

    /// Sharer vector for `block` (testing/coherence-invariant aid).
    pub fn sharers(&self, block: u64) -> u64 {
        self.find(block).map_or(0, |i| self.entries[i].sharers)
    }

    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    pub fn reset_stats(&mut self) {
        self.stats = SdcDirStats::default();
    }

    /// Serialize the directory entries, LRU clock, and stats. Geometry is
    /// checked on restore; latency is config and not stored.
    pub fn save_state(&self, w: &mut simstate::StateSink) {
        w.tag(b"SDIR");
        w.put_usize(self.sets);
        w.put_usize(self.ways);
        for e in &self.entries {
            w.put_u64(e.block);
            w.put_bool(e.valid);
            w.put_u64(e.sharers);
            w.put_u64(e.stamp);
        }
        w.put_u64(self.clock);
        w.put_u64(self.stats.lookups);
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.inserts);
        w.put_u64(self.stats.capacity_evictions);
    }

    /// Restore state saved by [`Self::save_state`] into a directory of the
    /// same geometry.
    pub fn load_state(
        &mut self,
        r: &mut simstate::StateSource,
    ) -> Result<(), simstate::StateError> {
        r.expect_tag(b"SDIR")?;
        let sets = r.get_usize()?;
        if sets != self.sets {
            return Err(simstate::StateError::ShapeMismatch {
                what: "sdcdir sets",
                expected: self.sets as u64,
                found: sets as u64,
            });
        }
        let ways = r.get_usize()?;
        if ways != self.ways {
            return Err(simstate::StateError::ShapeMismatch {
                what: "sdcdir ways",
                expected: self.ways as u64,
                found: ways as u64,
            });
        }
        for e in &mut self.entries {
            e.block = r.get_u64()?;
            e.valid = r.get_bool()?;
            e.sharers = r.get_u64()?;
            e.stamp = r.get_u64()?;
        }
        self.clock = r.get_u64()?;
        self.stats.lookups = r.get_u64()?;
        self.stats.hits = r.get_u64()?;
        self.stats.inserts = r.get_u64()?;
        self.stats.capacity_evictions = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> SdcDir {
        SdcDir::new(&SdcDirConfig::table1())
    }

    #[test]
    fn insert_then_contains() {
        let mut d = dir();
        assert!(!d.contains(42));
        assert_eq!(d.insert(42, 0), None);
        assert!(d.contains(42));
        assert_eq!(d.sharers(42), 1);
    }

    #[test]
    fn second_core_adds_sharer_bit() {
        let mut d = dir();
        d.insert(42, 0);
        d.insert(42, 3);
        assert_eq!(d.sharers(42), 0b1001);
        assert_eq!(d.occupancy(), 1);
    }

    #[test]
    fn remove_clears_when_last_sharer_leaves() {
        let mut d = dir();
        d.insert(7, 0);
        d.insert(7, 1);
        d.remove(7, 0);
        assert!(d.contains(7));
        d.remove(7, 1);
        assert!(!d.contains(7));
    }

    #[test]
    fn capacity_eviction_reports_displaced_block() {
        let mut d = dir();
        // 16 sets: blocks congruent mod 16 share a set (8 ways).
        let mut displaced = None;
        for i in 0..9u64 {
            displaced = d.insert(i * 16, 0);
        }
        assert_eq!(displaced, Some(0), "LRU entry (block 0) displaced");
        assert_eq!(d.stats.capacity_evictions, 1);
    }

    #[test]
    fn precise_occupancy_bounded_by_entries() {
        let mut d = dir();
        for i in 0..1000u64 {
            d.insert(i, 0);
        }
        assert!(d.occupancy() <= 128);
    }
}
