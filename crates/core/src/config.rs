//! Configuration for the SDC+LP proposal (Table I rows: SDC, LP Predictor,
//! SDCDir) and the design-space variants of Section V-B.

use serde::{Deserialize, Serialize};
use simcore::config::{CacheConfig, PrefetcherKind, ReplacementKind};

/// Large Predictor table configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LpConfig {
    /// Total prediction-table entries.
    pub entries: usize,
    /// Table associativity (`entries` must be a multiple of `ways`).
    pub ways: usize,
    /// Global threshold tau_glob: accesses whose stride accumulator is at
    /// least this are routed to the SDC.
    pub tau_glob: u64,
}

impl LpConfig {
    /// Table I default: 32 entries, 8-way, tau_glob = 8.
    pub const fn table1() -> Self {
        LpConfig { entries: 32, ways: 8, tau_glob: 8 }
    }

    pub const fn sets(&self) -> usize {
        self.entries / self.ways
    }

    /// Fully-associative variant with `entries` entries (Fig. 11 sweep).
    pub const fn fully_associative(entries: usize, tau_glob: u64) -> Self {
        LpConfig { entries, ways: entries, tau_glob }
    }
}

/// Side Data Cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdcConfig {
    pub sets: usize,
    pub ways: usize,
    pub latency: u64,
    pub mshr_entries: usize,
}

impl SdcConfig {
    /// Table I default: 8 KiB, 2-way, 1-cycle, 10 MSHRs.
    pub const fn table1() -> Self {
        SdcConfig { sets: 64, ways: 2, latency: 1, mshr_entries: 10 }
    }

    /// The 16 KiB design point of Fig. 10: 4-way, 3-cycle.
    pub const fn kb16() -> Self {
        SdcConfig { sets: 64, ways: 4, latency: 3, mshr_entries: 10 }
    }

    /// The 32 KiB design point of Fig. 10: 8-way, 4-cycle.
    pub const fn kb32() -> Self {
        SdcConfig { sets: 64, ways: 8, latency: 4, mshr_entries: 10 }
    }

    pub const fn size_bytes(&self) -> u64 {
        (self.sets * self.ways * 64) as u64
    }

    /// Lower to the generic cache geometry (LRU + next-line, per Table I).
    pub const fn as_cache_config(&self) -> CacheConfig {
        CacheConfig {
            sets: self.sets,
            ways: self.ways,
            latency: self.latency,
            mshr_entries: self.mshr_entries,
            replacement: ReplacementKind::Lru,
            prefetcher: PrefetcherKind::NextLine,
        }
    }
}

/// SDCDir (coherence directory extension) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdcDirConfig {
    pub sets: usize,
    pub ways: usize,
    pub latency: u64,
}

impl SdcDirConfig {
    /// Table I default: 128 entries per core, 8-way, 1-cycle.
    pub const fn table1() -> Self {
        SdcDirConfig { sets: 16, ways: 8, latency: 1 }
    }

    pub const fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

/// Full SDC+LP proposal configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdcLpConfig {
    pub sdc: SdcConfig,
    pub lp: LpConfig,
    pub sdcdir: SdcDirConfig,
    /// Latency of the lightweight coherence probe an SDC miss sends to the
    /// cache directory + SDCDir (core cycles). The SDCDir itself is
    /// 1-cycle (Table I); the rest is on-chip traversal.
    pub dir_probe_latency: u64,
}

impl SdcLpConfig {
    /// The configuration evaluated throughout Section V.
    pub const fn table1() -> Self {
        SdcLpConfig {
            sdc: SdcConfig::table1(),
            lp: LpConfig::table1(),
            sdcdir: SdcDirConfig::table1(),
            dir_probe_latency: 8,
        }
    }
}

impl Default for SdcLpConfig {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let cfg = SdcLpConfig::table1();
        assert_eq!(cfg.sdc.size_bytes(), 8 * 1024);
        assert_eq!(cfg.sdc.ways, 2);
        assert_eq!(cfg.sdc.latency, 1);
        assert_eq!(cfg.lp.entries, 32);
        assert_eq!(cfg.lp.ways, 8);
        assert_eq!(cfg.lp.sets(), 4);
        assert_eq!(cfg.lp.tau_glob, 8);
        assert_eq!(cfg.sdcdir.entries(), 128);
    }

    #[test]
    fn dse_sizes() {
        assert_eq!(SdcConfig::kb16().size_bytes(), 16 * 1024);
        assert_eq!(SdcConfig::kb32().size_bytes(), 32 * 1024);
    }

    #[test]
    fn fully_associative_lp() {
        let lp = LpConfig::fully_associative(16, 8);
        assert_eq!(lp.sets(), 1);
        assert_eq!(lp.ways, 16);
    }
}
