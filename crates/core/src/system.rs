//! The complete SDC+LP memory system (Section III-D, "Putting It All
//! Together"): a router (LP or expert) steers each access either into the
//! conventional L1D/L2C/LLC path or into the Side Data Cache; SDC misses
//! send a lightweight coherence probe to the directory + SDCDir and, when
//! no on-chip copy exists, fetch straight from DRAM — bypassing the L2C
//! and LLC in both directions.

use crate::config::SdcLpConfig;
use crate::lp::{LargePredictor, Route};
use crate::router::{ExpertRouter, LpRouter, Router};
use crate::sdcdir::SdcDir;
use simcore::block::{block_of, BLOCK_BITS};
use simcore::cache::{Cache, LookupResult};
use simcore::config::SystemConfig;
use simcore::hierarchy::{
    AccessOutcome, CoreMemory, CoreSide, ServedBy, SharedBackend, SingleCore,
};
use simcore::mshr::{MshrFile, MshrOutcome};
use simcore::prefetch::{NextLine, Prefetcher};
use simcore::replacement::ReplCtx;
use simcore::stats::HierStats;
use simcore::trace::{MemRef, StructId};

/// Per-core SDC+LP memory side: the baseline private hierarchy plus the
/// SDC, the routing predictor, and the SDCDir.
pub struct SdcCore<R: Router> {
    pub inner: CoreSide,
    pub router: R,
    pub sdc: Cache,
    sdc_mshr: MshrFile,
    sdc_prefetcher: NextLine,
    pub sdcdir: SdcDir,
    cfg: SdcLpConfig,
    core_id: usize,
    routed_to_sdc: u64,
    sdc_served_by_hierarchy: u64,
    sdcdir_evict_invalidations: u64,
    pf_buf: Vec<u64>,
    tel: simtel::TelemetryHandle,
}

impl<R: Router> SdcCore<R> {
    pub fn new(sys: &SystemConfig, cfg: SdcLpConfig, router: R, core_id: usize) -> Self {
        SdcCore {
            inner: CoreSide::new(sys),
            router,
            sdc: Cache::new(&cfg.sdc.as_cache_config()),
            sdc_mshr: MshrFile::new(cfg.sdc.mshr_entries),
            sdc_prefetcher: NextLine::new(),
            sdcdir: SdcDir::new(&cfg.sdcdir),
            cfg,
            core_id,
            routed_to_sdc: 0,
            sdc_served_by_hierarchy: 0,
            sdcdir_evict_invalidations: 0,
            pf_buf: Vec::with_capacity(4),
            tel: simtel::TelemetryHandle::disabled(),
        }
    }

    pub fn config(&self) -> &SdcLpConfig {
        &self.cfg
    }

    /// Fill `block` into the SDC, maintaining the SDCDir and writing dirty
    /// victims straight back to DRAM (the SDC never fills the L2C/LLC).
    fn fill_sdc(
        &mut self,
        addr: u64,
        block: u64,
        dirty: bool,
        prefetched: bool,
        backend: &mut SharedBackend,
        now: u64,
    ) {
        if let Some(ev) = self.sdc.fill(addr, block, dirty, prefetched, ReplCtx::NONE) {
            if ev.dirty {
                backend.dram_writeback(ev.block, now);
            }
            self.sdcdir.remove(ev.block, self.core_id);
        }
        if let Some(displaced) = self.sdcdir.insert(block, self.core_id) {
            // SDCDir capacity eviction: the displaced block must leave every
            // SDC (Section III-C), writing back to DRAM if dirty.
            if let Some(was_dirty) = self.sdc.invalidate(displaced) {
                if was_dirty {
                    backend.dram_writeback(displaced, now);
                }
            }
            self.sdcdir_evict_invalidations += 1;
        }
    }

    /// The SDC's next-line prefetcher (Table I).
    fn sdc_prefetch(
        &mut self,
        pc: u16,
        block: u64,
        hit: bool,
        backend: &mut SharedBackend,
        now: u64,
    ) {
        let mut buf = std::mem::take(&mut self.pf_buf);
        buf.clear();
        self.sdc_prefetcher.on_access(pc, block, hit, &mut buf);
        for &pb in &buf {
            if self.sdc.probe(pb) {
                continue;
            }
            if !self.sdc_mshr.try_acquire(pb, now) {
                break; // MSHR file full: the prefetch is dropped
            }
            // Prefetch data is sourced past the LLC like demand bypasses;
            // congested DRAM drops the prefetch (as at the L1D).
            let done = if self.inner.l2c.probe(pb) {
                now + self.inner.l2c.latency
            } else if !backend.prefetch_source(pb, now) {
                continue;
            } else {
                now + backend.dram.closed_row_latency()
            };
            self.sdc_mshr.commit(pb, done);
            let pa = pb << BLOCK_BITS;
            self.fill_sdc(pa, pb, false, true, backend, now);
        }
        self.pf_buf = buf;
    }

    /// Probe the conventional hierarchy for `block`; returns the serving
    /// level's latency if a valid copy exists.
    fn hierarchy_probe(&self, block: u64, backend: &SharedBackend) -> Option<(u64, ServedBy)> {
        if self.inner.l1d.probe(block) {
            Some((self.inner.l1d.latency, ServedBy::L1d))
        } else if self.inner.l2c.probe(block) {
            Some((self.inner.l2c.latency, ServedBy::L2c))
        } else if backend.llc.probe(block) {
            Some((backend.llc.latency(), ServedBy::Llc))
        } else {
            None
        }
    }

    /// Invalidate `block` throughout the conventional hierarchy (the write
    /// path of the coherence protocol), returning whether any copy was
    /// dirty.
    fn invalidate_hierarchy(&mut self, block: u64, backend: &mut SharedBackend) -> bool {
        let mut dirty = false;
        if let Some(d) = self.inner.l1d.invalidate(block) {
            dirty |= d;
        }
        if let Some(d) = self.inner.l2c.invalidate(block) {
            dirty |= d;
        }
        if let Some(d) = backend.llc.invalidate(block) {
            dirty |= d;
        }
        dirty
    }

    /// The SDC access path (Fig. 4 steps 3 and onward).
    fn access_via_sdc(
        &mut self,
        r: &MemRef,
        now: u64,
        backend: &mut SharedBackend,
    ) -> AccessOutcome {
        self.routed_to_sdc += 1;
        self.tel.event(now, || simtel::EventKind::SdcBypass);
        let block = block_of(r.addr);
        let t0 = now + self.inner.tlb.translate(r.addr);

        let hit = self.sdc.access(r.addr, block, r.is_write, ReplCtx::NONE) == LookupResult::Hit;
        let t_sdc_done = t0 + self.sdc.latency;
        if hit {
            self.sdc_prefetch(r.pc, block, true, backend, t_sdc_done);
            return AccessOutcome::new(t_sdc_done, ServedBy::Sdc);
        }

        let t_miss = match self.sdc_mshr.acquire(block, t_sdc_done) {
            MshrOutcome::Merged { done } => {
                return AccessOutcome::new(done, ServedBy::Sdc);
            }
            MshrOutcome::Granted { start } => start,
        };
        let sdc_stalled = t_miss > t_sdc_done;

        // Lightweight coherence message: the cache directory and the SDCDir
        // are probed in parallel (Section III-C).
        let t_probe = t_miss + self.cfg.dir_probe_latency.max(self.sdcdir.latency);
        let _ = self.sdcdir.contains(block); // directory bookkeeping/stats

        let (completion, served_by, dram_stalled) = match self.hierarchy_probe(block, backend) {
            Some((level_latency, level)) => {
                // The LP called a hierarchy-resident line averse.
                self.sdc_served_by_hierarchy += 1;
                let done = t_probe + level_latency;
                self.tel.event(done, || simtel::EventKind::LpMispredict);
                if r.is_write {
                    // Writes leave a single valid copy: pull the block out
                    // of the hierarchy (writeback absorbed by the fetch) and
                    // own it dirty in the SDC.
                    self.invalidate_hierarchy(block, backend);
                    self.fill_sdc(r.addr, block, true, false, backend, done);
                }
                (done, level, false)
            }
            None => {
                // Fast path to DRAM: bypass the L2C and LLC entirely and
                // fill only the SDC (Section III-A).
                let (done, stalled) = backend.dram_fetch(block, t_probe);
                self.fill_sdc(r.addr, block, r.is_write, false, backend, done);
                (done, ServedBy::Dram, stalled)
            }
        };
        self.sdc_mshr.commit(block, completion);
        // Prefetch behind the demand so it never steals the DRAM bank.
        self.sdc_prefetch(r.pc, block, false, backend, completion);
        AccessOutcome::new(completion, served_by).with_mshr_stall(sdc_stalled || dram_stalled)
    }
}

impl<R: Router> CoreMemory for SdcCore<R> {
    fn access(&mut self, r: &MemRef, now: u64, backend: &mut SharedBackend) -> AccessOutcome {
        let block = block_of(r.addr);
        match self.router.route(r) {
            Route::Sdc => self.access_via_sdc(r, now, backend),
            Route::Hierarchy => {
                if self.sdc.probe(block) {
                    if r.is_write {
                        // The hierarchy-path write invalidates the SDC copy
                        // so a single valid (dirty) copy remains.
                        if let Some(dirty) = self.sdc.invalidate(block) {
                            if dirty {
                                backend.dram_writeback(block, now);
                            }
                        }
                        self.sdcdir.remove(block, self.core_id);
                        self.inner.access(r, now, backend)
                    } else {
                        // The parallel SDCDir lookup finds the (possibly
                        // dirty) copy in the SDC; serve it from there.
                        let t0 = now + self.inner.tlb.translate(r.addr);
                        let completion = t0 + self.sdcdir.latency + self.sdc.latency;
                        let _ = self.sdc.access(r.addr, block, false, ReplCtx::NONE);
                        AccessOutcome::new(completion, ServedBy::Sdc)
                    }
                } else {
                    self.inner.access(r, now, backend)
                }
            }
        }
    }

    fn collect_core_stats(&self) -> HierStats {
        let mut s = self.inner.collect_core_stats();
        s.sdc = self.sdc.stats;
        s.routed_to_sdc = self.routed_to_sdc;
        s.sdc_served_by_hierarchy = self.sdc_served_by_hierarchy;
        s.sdcdir_evict_invalidations = self.sdcdir_evict_invalidations;
        s
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.sdc.stats.reset();
        self.sdcdir.reset_stats();
        self.router.reset_stats();
        self.routed_to_sdc = 0;
        self.sdc_served_by_hierarchy = 0;
        self.sdcdir_evict_invalidations = 0;
    }

    fn attach_telemetry(&mut self, tel: simtel::TelemetryHandle) {
        self.inner.attach_telemetry(tel.clone());
        self.tel = tel;
    }

    fn telemetry_counters(&self) -> simtel::ExtraCounters {
        let inner = self.inner.telemetry_counters();
        let lp = self.router.lp_stats().unwrap_or_default();
        simtel::ExtraCounters {
            mshr_high_water: inner.mshr_high_water.max(self.sdc_mshr.high_water),
            mshr_stall_cycles: inner.mshr_stall_cycles + self.sdc_mshr.stall_cycles,
            lp_lookups: lp.lookups,
            lp_sdc_routes: lp.sdc_routes,
            lp_hierarchy_routes: lp.hierarchy_routes,
            sdc_bypasses: self.routed_to_sdc,
            sdcdir_occupancy: self.sdcdir.occupancy() as u64,
        }
    }

    fn save_state(&self, w: &mut simstate::StateSink) {
        w.tag(b"SDCC");
        self.inner.save_state(w);
        self.router.save_state(w);
        self.sdc.save_state(w);
        self.sdc_mshr.save_state(w);
        self.sdc_prefetcher.save_state(w);
        self.sdcdir.save_state(w);
        w.put_u64(self.routed_to_sdc);
        w.put_u64(self.sdc_served_by_hierarchy);
        w.put_u64(self.sdcdir_evict_invalidations);
        // pf_buf is per-access scratch (cleared before every use): skipped.
    }

    fn load_state(&mut self, r: &mut simstate::StateSource) -> Result<(), simstate::StateError> {
        r.expect_tag(b"SDCC")?;
        self.inner.load_state(r)?;
        self.router.load_state(r)?;
        self.sdc.load_state(r)?;
        self.sdc_mshr.load_state(r)?;
        self.sdc_prefetcher.load_state(r)?;
        self.sdcdir.load_state(r)?;
        self.routed_to_sdc = r.get_u64()?;
        self.sdc_served_by_hierarchy = r.get_u64()?;
        self.sdcdir_evict_invalidations = r.get_u64()?;
        Ok(())
    }
}

/// The SDC+LP per-core memory side evaluated throughout the paper.
pub type SdcLpCore = SdcCore<LpRouter>;

/// The Expert Programmer per-core memory side (Fig. 13).
pub type ExpertCore = SdcCore<ExpertRouter>;

impl SdcLpCore {
    pub fn new_lp(sys: &SystemConfig, cfg: SdcLpConfig, core_id: usize) -> Self {
        let lp = LargePredictor::new(cfg.lp);
        SdcCore::new(sys, cfg, LpRouter::new(lp), core_id)
    }
}

impl ExpertCore {
    pub fn new_expert(
        sys: &SystemConfig,
        cfg: SdcLpConfig,
        averse_sids: &[StructId],
        core_id: usize,
    ) -> Self {
        SdcCore::new(sys, cfg, ExpertRouter::new(averse_sids), core_id)
    }
}

/// Single-core SDC+LP machine (plugs into `simcore::Engine`).
pub type SdcLpSystem = SingleCore<SdcLpCore>;

/// Single-core Expert Programmer machine.
pub type ExpertSystem = SingleCore<ExpertCore>;

/// Build the single-core SDC+LP system of Table I.
pub fn sdclp_system(sys: &SystemConfig, cfg: SdcLpConfig) -> SdcLpSystem {
    SingleCore::from_parts(SdcLpCore::new_lp(sys, cfg, 0), SharedBackend::new(sys))
}

/// Build the single-core Expert Programmer system of Fig. 13.
pub fn expert_system(
    sys: &SystemConfig,
    cfg: SdcLpConfig,
    averse_sids: &[StructId],
) -> ExpertSystem {
    SingleCore::from_parts(
        ExpertCore::new_expert(sys, cfg, averse_sids, 0),
        SharedBackend::new(sys),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::config::PrefetcherKind;
    use simcore::hierarchy::MemorySystem;

    fn sys_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::baseline(1);
        cfg.l1d.prefetcher = PrefetcherKind::None;
        cfg.l2c.prefetcher = PrefetcherKind::None;
        cfg
    }

    fn irregular_ref(i: u64) -> MemRef {
        // Same PC, huge strides: the LP learns to route these to the SDC.
        MemRef::read(7, 1, (i * 1_000_003) % (1 << 30) * 64)
    }

    #[test]
    fn lp_learns_and_bypasses_to_sdc() {
        let mut sys = sdclp_system(&sys_cfg(), SdcLpConfig::table1());
        let mut t = 0;
        for i in 0..100u64 {
            let out = sys.access(&irregular_ref(i), t);
            t = out.completion + 10;
        }
        let s = sys.collect_stats();
        assert!(s.routed_to_sdc > 50, "routed_to_sdc = {}", s.routed_to_sdc);
        assert!(s.sdc.accesses > 50);
        // The L2C must have been bypassed for those accesses.
        assert!(s.l2c.accesses < 50, "l2c accesses = {}", s.l2c.accesses);
    }

    #[test]
    fn sdc_bypass_is_faster_than_full_walk() {
        // Compare the DRAM-bound access latency on the two paths.
        let cfg = sys_cfg();
        let mut base = simcore::BaselineHierarchy::new(&cfg);
        let base_out = base.access(&MemRef::read(1, 0, 0x123400000), 0);

        let mut sys = sdclp_system(&cfg, SdcLpConfig::table1());
        // Train the LP first.
        let mut t = 0;
        for i in 0..50u64 {
            t = sys.access(&irregular_ref(i), t).completion + 5;
        }
        // A fresh cold access routed through the SDC path.
        let out = sys.access(&irregular_ref(5000), 1_000_000);
        let sdc_latency = out.completion - 1_000_000;
        let base_latency = base_out.completion;
        assert!(
            sdc_latency < base_latency,
            "SDC path {sdc_latency} should beat baseline walk {base_latency}"
        );
    }

    #[test]
    fn bypass_does_not_pollute_llc() {
        let mut sys = sdclp_system(&sys_cfg(), SdcLpConfig::table1());
        let mut t = 0;
        for i in 0..200u64 {
            t = sys.access(&irregular_ref(i), t).completion + 5;
        }
        let s = sys.collect_stats();
        // After training, LLC fills should be far fewer than SDC-path accesses.
        assert!(s.llc.fills < 100, "LLC fills = {} despite bypassing", s.llc.fills);
    }

    #[test]
    fn expert_router_bypasses_tagged_structures() {
        let mut sys = expert_system(&sys_cfg(), SdcLpConfig::table1(), &[5]);
        let averse = MemRef::read(1, 5, 0x1000000);
        let friendly = MemRef::read(2, 3, 0x2000000);
        sys.access(&averse, 0);
        sys.access(&friendly, 1000);
        let s = sys.collect_stats();
        assert_eq!(s.routed_to_sdc, 1);
        assert_eq!(s.sdc.accesses, 1);
        assert_eq!(s.l1d.accesses, 1);
    }

    #[test]
    fn write_then_hierarchy_read_sees_single_copy_semantics() {
        let mut sys = expert_system(&sys_cfg(), SdcLpConfig::table1(), &[5]);
        let addr = 0x5000000;
        // Write lands in the SDC (dirty).
        sys.access(&MemRef::write(1, 5, addr), 0);
        assert!(sys.core.sdc.probe(block_of(addr)));
        // A hierarchy-routed read of the same block is served by the SDC
        // (the SDCDir finds it), not by stale DRAM data.
        let out = sys.access(&MemRef::read(2, 0, addr), 1000);
        assert_eq!(out.served_by, ServedBy::Sdc);
    }

    #[test]
    fn hierarchy_write_invalidates_sdc_copy() {
        let mut sys = expert_system(&sys_cfg(), SdcLpConfig::table1(), &[5]);
        let addr = 0x6000000;
        sys.access(&MemRef::read(1, 5, addr), 0); // fills SDC
        assert!(sys.core.sdc.probe(block_of(addr)));
        sys.access(&MemRef::write(2, 0, addr), 1000); // hierarchy write
        assert!(!sys.core.sdc.probe(block_of(addr)), "SDC copy must be invalidated");
        assert_eq!(sys.core.sdcdir.sharers(block_of(addr)), 0);
    }

    #[test]
    fn sdc_write_pulls_block_out_of_hierarchy() {
        let mut sys = expert_system(&sys_cfg(), SdcLpConfig::table1(), &[5]);
        let addr = 0x7000000;
        // Bring the block into the hierarchy first (friendly sid).
        sys.access(&MemRef::read(1, 0, addr), 0);
        assert!(sys.core.inner.l1d.probe(block_of(addr)));
        // Now write via the SDC path.
        sys.access(&MemRef::write(2, 5, addr), 10_000);
        assert!(!sys.core.inner.l1d.probe(block_of(addr)));
        assert!(sys.core.sdc.probe(block_of(addr)));
    }

    #[test]
    fn sdcdir_tracks_sdc_contents_precisely() {
        let mut sys = expert_system(&sys_cfg(), SdcLpConfig::table1(), &[5]);
        let mut t = 0;
        for i in 0..64u64 {
            t = sys.access(&MemRef::read(1, 5, i * 64 * 1024), t).completion + 5;
        }
        // Every block in the SDC must be covered by the SDCDir (precision
        // invariant of Section III-C). The converse need not hold after
        // SDC capacity evictions.
        for i in 0..64u64 {
            let b = block_of(i * 64 * 1024);
            if sys.core.sdc.probe(b) {
                assert_ne!(sys.core.sdcdir.sharers(b), 0, "block {b} in SDC but not SDCDir");
            }
        }
    }

    #[test]
    fn sdclp_snapshot_restore_then_run_is_bit_identical() {
        use simcore::engine::{Engine, Window};
        use simcore::trace::{RecordingTracer, Tracer};

        // Mixed friendly/averse stream so the LP trains mid-trace and the
        // SDC, SDCDir, and both MSHR files all hold live state at the split.
        let mut rec = RecordingTracer::new(u64::MAX);
        let mut x = 99u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match i % 4 {
                0 => rec.mem(irregular_ref(i)),
                1 => rec.mem(MemRef::read(3, 0, (i % 256) * 64)),
                2 => rec.mem(MemRef::write(5, 2, (x >> 24) % 500_000 * 64)),
                _ => rec.bubble(1 + (x % 3) as u32),
            }
        }
        let trace = rec.finish();

        let cfg = sys_cfg();
        let build = || {
            Engine::new(sdclp_system(&cfg, SdcLpConfig::table1()), 4, 224, Window::new(2000, 8000))
        };

        let mut straight = build();
        straight.replay(&trace);
        let want = straight.finish();
        assert!(want.stats.routed_to_sdc > 0, "LP never routed to the SDC");

        for split in [800usize, 3_500] {
            let mut first = build();
            let pos = first.replay_span(&trace, 0, split);
            assert_eq!(pos, split);
            let payload = first.snapshot();

            let mut resumed = build();
            resumed.restore(&payload).unwrap();
            resumed.replay_from(&trace, pos);
            assert_eq!(resumed.finish(), want, "diverged after restore at event {split}");
        }
    }

    #[test]
    fn sdc_hit_is_one_cycle_plus_tlb() {
        let mut sys = expert_system(&sys_cfg(), SdcLpConfig::table1(), &[5]);
        let addr = 0x9000000;
        let first = sys.access(&MemRef::read(1, 5, addr), 0);
        // Second access: TLB warm, SDC hit at 1 cycle.
        let t = first.completion + 100;
        let out = sys.access(&MemRef::read(1, 5, addr), t);
        assert_eq!(out.served_by, ServedBy::Sdc);
        assert_eq!(out.completion - t, 1);
    }
}
