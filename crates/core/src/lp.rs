//! The Large Predictor (LP): a PC-indexed stride-accumulator table that
//! classifies each memory access as cache-friendly (route to the L1D) or
//! cache-averse (route to the SDC). Section III-B of the paper.
//!
//! Each entry holds the tag of the owning PC, the block address of that
//! PC's previous access, a 14-bit saturating accumulation of past strides,
//! and a valid bit. On every access the entry's accumulator is updated as
//! `s_acc = (s_acc + |stride|) >> 1` — an exponential moving average of the
//! stride magnitude — and the access is sent to the SDC iff
//! `s_acc >= tau_glob` *before* the update (prediction precedes training,
//! Fig. 4/5).

use crate::config::LpConfig;
use serde::Serialize;

/// Saturation bound of the 14-bit stride accumulator (Table IV).
pub const S_ACC_MAX: u64 = (1 << 14) - 1;

/// Where the predictor routes an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Cache-averse: serve via the Side Data Cache.
    Sdc,
    /// Cache-friendly (or no information): serve via L1D/L2C/LLC.
    Hierarchy,
}

#[derive(Debug, Clone, Copy, Default)]
struct LpEntry {
    tag: u64,
    /// Block address of the previous access by this PC.
    addr: u64,
    /// Saturating stride accumulator.
    s_acc: u64,
    valid: bool,
    stamp: u64,
}

/// Predictor statistics.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct LpStats {
    pub lookups: u64,
    pub table_hits: u64,
    pub table_misses: u64,
    pub sdc_routes: u64,
    pub hierarchy_routes: u64,
}

/// The Large Predictor.
#[derive(Debug)]
pub struct LargePredictor {
    cfg: LpConfig,
    sets: usize,
    entries: Vec<LpEntry>,
    clock: u64,
    pub stats: LpStats,
}

impl LargePredictor {
    pub fn new(cfg: LpConfig) -> Self {
        assert!(
            cfg.ways > 0 && cfg.entries.is_multiple_of(cfg.ways),
            "entries must divide by ways"
        );
        let sets = cfg.entries / cfg.ways;
        // The tag is the PC with the set-index bits shifted off, so the set
        // count must be a power of two: with e.g. 6 sets, `pc % 6` and
        // `pc >> 1` would let distinct PCs collide on the same (set, tag)
        // and silently share one accumulator.
        assert!(
            sets.is_power_of_two(),
            "LP set count must be a power of two (entries {} / ways {} = {} sets)",
            cfg.entries,
            cfg.ways,
            sets
        );
        LargePredictor {
            cfg,
            sets,
            entries: vec![LpEntry::default(); cfg.entries],
            clock: 0,
            stats: LpStats::default(),
        }
    }

    pub fn config(&self) -> &LpConfig {
        &self.cfg
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        (pc & (self.sets as u64 - 1)) as usize
    }

    #[inline]
    fn tag_of(&self, pc: u64) -> u64 {
        pc >> self.sets.trailing_zeros()
    }

    /// Predict the route for the access `(pc, block)` and train the table,
    /// exactly as Figs. 4 and 5 describe: look up by PC; on a hit compare
    /// the *current* accumulator against tau_glob, then fold in the new
    /// stride; on a miss install a fresh entry (LRU victim) and route to
    /// the hierarchy.
    pub fn predict_and_train(&mut self, pc: u64, block: u64) -> Route {
        self.clock += 1;
        self.stats.lookups += 1;
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let base = set * self.cfg.ways;

        for w in 0..self.cfg.ways {
            let e = &mut self.entries[base + w];
            if e.valid && e.tag == tag {
                self.stats.table_hits += 1;
                let route =
                    if e.s_acc >= self.cfg.tau_glob { Route::Sdc } else { Route::Hierarchy };
                // Train: accumulate the new stride and halve (Fig. 5 step 4).
                let stride = e.addr.abs_diff(block);
                e.s_acc = ((e.s_acc + stride) >> 1).min(S_ACC_MAX);
                e.addr = block;
                e.stamp = self.clock;
                match route {
                    Route::Sdc => self.stats.sdc_routes += 1,
                    Route::Hierarchy => self.stats.hierarchy_routes += 1,
                }
                return route;
            }
        }

        // Table miss: install over the LRU (or invalid) way; the access
        // itself goes through the normal hierarchy (Fig. 4 step 5).
        self.stats.table_misses += 1;
        self.stats.hierarchy_routes += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.cfg.ways {
            let e = &self.entries[base + w];
            let key = if e.valid { e.stamp } else { 0 };
            if key < oldest {
                oldest = key;
                victim = w;
            }
        }
        self.entries[base + victim] =
            LpEntry { tag, addr: block, s_acc: 0, valid: true, stamp: self.clock };
        Route::Hierarchy
    }

    /// Inspect the accumulator currently associated with `pc`, if any
    /// (testing/inspection aid).
    pub fn accumulator_of(&self, pc: u64) -> Option<u64> {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let base = set * self.cfg.ways;
        (0..self.cfg.ways)
            .map(|w| &self.entries[base + w])
            .find(|e| e.valid && e.tag == tag)
            .map(|e| e.s_acc)
    }

    pub fn reset_stats(&mut self) {
        self.stats = LpStats::default();
    }

    /// Serialize the predictor table, LRU clock, and stats. The config is
    /// not stored (validated via the snapshot's config hash); geometry is
    /// checked on restore.
    pub fn save_state(&self, w: &mut simstate::StateSink) {
        w.tag(b"LP__");
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.tag);
            w.put_u64(e.addr);
            w.put_u64(e.s_acc);
            w.put_bool(e.valid);
            w.put_u64(e.stamp);
        }
        w.put_u64(self.clock);
        w.put_u64(self.stats.lookups);
        w.put_u64(self.stats.table_hits);
        w.put_u64(self.stats.table_misses);
        w.put_u64(self.stats.sdc_routes);
        w.put_u64(self.stats.hierarchy_routes);
    }

    /// Restore state saved by [`Self::save_state`] into a predictor of the
    /// same geometry.
    pub fn load_state(
        &mut self,
        r: &mut simstate::StateSource,
    ) -> Result<(), simstate::StateError> {
        r.expect_tag(b"LP__")?;
        let n = r.get_usize()?;
        if n != self.entries.len() {
            return Err(simstate::StateError::ShapeMismatch {
                what: "lp entries",
                expected: self.entries.len() as u64,
                found: n as u64,
            });
        }
        for e in &mut self.entries {
            e.tag = r.get_u64()?;
            e.addr = r.get_u64()?;
            e.s_acc = r.get_u64()?;
            e.valid = r.get_bool()?;
            e.stamp = r.get_u64()?;
        }
        self.clock = r.get_u64()?;
        self.stats.lookups = r.get_u64()?;
        self.stats.table_hits = r.get_u64()?;
        self.stats.table_misses = r.get_u64()?;
        self.stats.sdc_routes = r.get_u64()?;
        self.stats.hierarchy_routes = r.get_u64()?;
        Ok(())
    }

    /// Fraction of lookups routed to the SDC.
    pub fn sdc_route_ratio(&self) -> f64 {
        if self.stats.lookups == 0 {
            return 0.0;
        }
        self.stats.sdc_routes as f64 / self.stats.lookups as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp() -> LargePredictor {
        LargePredictor::new(LpConfig::table1())
    }

    #[test]
    fn first_access_installs_and_routes_to_hierarchy() {
        let mut p = lp();
        assert_eq!(p.predict_and_train(0x400, 100), Route::Hierarchy);
        assert_eq!(p.stats.table_misses, 1);
        assert_eq!(p.accumulator_of(0x400), Some(0));
    }

    #[test]
    fn sequential_pc_stays_in_hierarchy() {
        let mut p = lp();
        for i in 0..100u64 {
            let route = p.predict_and_train(0x400, 1000 + i);
            assert_eq!(route, Route::Hierarchy, "stride-1 access routed to SDC at i={i}");
        }
        // s_acc converges to ~1 (exponential average of stride 1).
        assert!(p.accumulator_of(0x400).unwrap() <= 1);
    }

    #[test]
    fn large_stride_pc_diverts_to_sdc() {
        let mut p = lp();
        let mut routes = Vec::new();
        for i in 0..20u64 {
            routes.push(p.predict_and_train(0x400, i * 100_000));
        }
        // After warm-up the accumulator is far above tau=8.
        assert_eq!(routes[0], Route::Hierarchy, "first access has no history");
        assert!(routes[5..].iter().all(|&r| r == Route::Sdc), "routes: {routes:?}");
        assert!(p.accumulator_of(0x400).unwrap() >= 8);
    }

    #[test]
    fn accumulator_is_exponential_average() {
        let mut p = lp();
        p.predict_and_train(1, 0);
        p.predict_and_train(1, 100); // s_acc = (0 + 100) >> 1 = 50
        assert_eq!(p.accumulator_of(1), Some(50));
        p.predict_and_train(1, 100); // s_acc = (50 + 0) >> 1 = 25
        assert_eq!(p.accumulator_of(1), Some(25));
        p.predict_and_train(1, 104); // s_acc = (25 + 4) >> 1 = 14
        assert_eq!(p.accumulator_of(1), Some(14));
    }

    #[test]
    fn accumulator_saturates_at_14_bits() {
        let mut p = lp();
        p.predict_and_train(1, 0);
        for i in 1..50u64 {
            p.predict_and_train(1, i * u64::from(u32::MAX));
        }
        assert_eq!(p.accumulator_of(1), Some(S_ACC_MAX));
    }

    #[test]
    fn prediction_precedes_training() {
        // tau = 8. A PC whose first observed stride is huge must still be
        // routed to the hierarchy on that access (s_acc was 0 at predict
        // time) and to the SDC on the next.
        let mut p = lp();
        p.predict_and_train(1, 0);
        assert_eq!(p.predict_and_train(1, 1_000_000), Route::Hierarchy);
        assert_eq!(p.predict_and_train(1, 2_000_000), Route::Sdc);
    }

    #[test]
    fn lru_replacement_within_set() {
        // 4 sets, 8 ways: PCs congruent mod 4 share a set. Install 9 PCs in
        // set 0; the first must have been evicted.
        let mut p = lp();
        for i in 0..9u64 {
            p.predict_and_train(i * 4, 0);
        }
        assert!(p.accumulator_of(0).is_none(), "PC 0 should be evicted");
        assert!(p.accumulator_of(32).is_none() || p.accumulator_of(4).is_some());
        assert!(p.accumulator_of(8 * 4).is_some(), "newest PC present");
    }

    #[test]
    fn tau_zero_routes_everything_with_history_to_sdc() {
        let mut p = LargePredictor::new(LpConfig { entries: 32, ways: 8, tau_glob: 0 });
        p.predict_and_train(1, 0);
        assert_eq!(p.predict_and_train(1, 1), Route::Sdc);
        assert_eq!(p.predict_and_train(1, 1), Route::Sdc); // stride 0 still >= 0
    }

    #[test]
    fn distinct_pcs_tracked_independently() {
        let mut p = lp();
        for i in 0..50u64 {
            p.predict_and_train(100, i); // stride 1
            p.predict_and_train(200, i * 50_000); // huge stride
        }
        assert_eq!(p.predict_and_train(100, 50), Route::Hierarchy);
        assert_eq!(p.predict_and_train(200, 99 * 50_000), Route::Sdc);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_set_count_is_rejected() {
        // 24 entries / 4 ways = 6 sets: set index (mod) and tag (shift)
        // would disagree, aliasing distinct PCs onto one accumulator.
        let _ = LargePredictor::new(LpConfig { entries: 24, ways: 4, tau_glob: 8 });
    }

    #[test]
    fn same_set_pcs_never_share_an_entry() {
        // 4 sets: PCs 3, 7, 11, ... all land in set 3 but carry distinct
        // tags. Train PC 3 with huge strides and its set neighbors with
        // stride 1; the neighbors must not inherit PC 3's accumulator.
        let mut p = lp();
        for i in 0..20u64 {
            p.predict_and_train(3, i * 100_000);
            p.predict_and_train(7, 5000 + i);
        }
        assert_eq!(p.predict_and_train(3, 0), Route::Sdc);
        assert_eq!(p.predict_and_train(7, 5020), Route::Hierarchy);
        assert!(p.accumulator_of(7).unwrap() <= 1);
    }

    #[test]
    fn fully_associative_table_works() {
        // sets = 1 (fig. 11 configuration): every PC shares the set, tag is
        // the whole PC.
        let mut p = LargePredictor::new(LpConfig { entries: 8, ways: 8, tau_glob: 8 });
        for pc in 0..8u64 {
            p.predict_and_train(pc, 0);
        }
        for pc in 0..8u64 {
            assert_eq!(p.accumulator_of(pc), Some(0), "pc {pc} evicted prematurely");
        }
    }

    #[test]
    fn stats_add_up() {
        let mut p = lp();
        for i in 0..100u64 {
            p.predict_and_train(i % 10, i * 1000);
        }
        assert_eq!(p.stats.lookups, 100);
        assert_eq!(p.stats.table_hits + p.stats.table_misses, 100);
        assert_eq!(p.stats.sdc_routes + p.stats.hierarchy_routes, 100);
    }
}
