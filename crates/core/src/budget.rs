//! Hardware-budget accounting (Table IV): per-core storage cost of the
//! SDC, the LP prediction table, and the SDCDir, assuming 48-bit physical
//! addresses.

use crate::config::SdcLpConfig;
use simcore::block::{BLOCK_BITS, BLOCK_BYTES, PHYS_ADDR_BITS};

/// One row of Table IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetRow {
    pub name: &'static str,
    pub entries: usize,
    pub bits_per_entry: u64,
    pub total_kb: f64,
}

impl BudgetRow {
    fn new(name: &'static str, entries: usize, bits_per_entry: u64) -> Self {
        BudgetRow {
            name,
            entries,
            bits_per_entry,
            total_kb: (entries as u64 * bits_per_entry) as f64 / 8.0 / 1024.0,
        }
    }
}

/// The full per-core hardware budget.
#[derive(Debug, Clone)]
pub struct HardwareBudget {
    pub rows: Vec<BudgetRow>,
}

impl HardwareBudget {
    /// Compute the budget for a configuration and core count, using the
    /// paper's accounting: the SDC stores 512 data bits plus a 42-bit block
    /// tag, valid and dirty bits; each LP entry stores a PC tag, the last
    /// block address, the 14-bit stride accumulator, and a valid bit; each
    /// SDCDir entry stores a 42-bit tag, 6 state bits, and one sharer bit
    /// per core.
    pub fn compute(cfg: &SdcLpConfig, cores: usize) -> Self {
        let block_tag_bits = u64::from(PHYS_ADDR_BITS - BLOCK_BITS); // 42

        let sdc_entries = cfg.sdc.sets * cfg.sdc.ways;
        let sdc_bits = BLOCK_BYTES * 8 /* data */ + block_tag_bits + 1 /* valid */ + 1 /* dirty */;

        // Table IV charges the LP a full-width PC tag (65 bits incl. thread
        // context) and a 58-bit address field; we reproduce that accounting.
        let lp_entries = cfg.lp.entries;
        let lp_bits = 65 + 58 + 14 + 1;

        let dir_entries = cfg.sdcdir.entries();
        let dir_bits = block_tag_bits + 6 + cores as u64;

        HardwareBudget {
            rows: vec![
                BudgetRow::new("SDC", sdc_entries, sdc_bits),
                BudgetRow::new("LP", lp_entries, lp_bits),
                BudgetRow::new("SDCDir", dir_entries, dir_bits),
            ],
        }
    }

    pub fn total_kb(&self) -> f64 {
        self.rows.iter().map(|r| r.total_kb).sum()
    }

    /// Render the budget as a Table IV-style text table.
    pub fn render(&self) -> String {
        let mut out = String::from("Structure  Entries  Bits/entry  Total KB\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>7} {:>11} {:>9.2}\n",
                r.name, r.entries, r.bits_per_entry, r.total_kb
            ));
        }
        out.push_str(&format!("{:<10} {:>7} {:>11} {:>9.2}\n", "TOTAL", "", "", self.total_kb()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_sdc_budget() {
        let b = HardwareBudget::compute(&SdcLpConfig::table1(), 1);
        let sdc = &b.rows[0];
        assert_eq!(sdc.entries, 128);
        assert_eq!(sdc.bits_per_entry, 512 + 42 + 1 + 1);
        assert!((sdc.total_kb - 8.69).abs() < 0.01, "SDC kb = {}", sdc.total_kb);
    }

    #[test]
    fn table4_lp_budget() {
        let b = HardwareBudget::compute(&SdcLpConfig::table1(), 1);
        let lp = &b.rows[1];
        assert_eq!(lp.entries, 32);
        assert_eq!(lp.bits_per_entry, 138);
        assert!((lp.total_kb - 0.54).abs() < 0.01, "LP kb = {}", lp.total_kb);
    }

    #[test]
    fn table4_sdcdir_budget() {
        let b = HardwareBudget::compute(&SdcLpConfig::table1(), 1);
        let dir = &b.rows[2];
        assert_eq!(dir.entries, 128);
        assert_eq!(dir.bits_per_entry, 42 + 6 + 1);
        assert!((dir.total_kb - 0.77).abs() < 0.01, "SDCDir kb = {}", dir.total_kb);
    }

    #[test]
    fn table4_total_is_about_10kb() {
        let b = HardwareBudget::compute(&SdcLpConfig::table1(), 1);
        assert!((9.9..10.1).contains(&b.total_kb()), "total = {}", b.total_kb());
    }

    #[test]
    fn sharer_bits_scale_with_cores() {
        let one = HardwareBudget::compute(&SdcLpConfig::table1(), 1);
        let four = HardwareBudget::compute(&SdcLpConfig::table1(), 4);
        assert_eq!(four.rows[2].bits_per_entry - one.rows[2].bits_per_entry, 3);
    }

    #[test]
    fn render_contains_all_rows() {
        let b = HardwareBudget::compute(&SdcLpConfig::table1(), 1);
        let s = b.render();
        assert!(s.contains("SDC"));
        assert!(s.contains("LP"));
        assert!(s.contains("SDCDir"));
        assert!(s.contains("TOTAL"));
    }
}
