//! Access routers: the component that decides, per memory access, whether
//! to use the SDC path or the conventional hierarchy.
//!
//! * [`LpRouter`] — the paper's proposal: the Large Predictor decides.
//! * [`ExpertRouter`] — the "Expert Programmer" comparison point (Fig. 13):
//!   a static per-data-structure classification derived from offline
//!   analysis of each workload's access patterns.
//! * [`StaticRouter`] — route everything one way (tau-sweep endpoints and
//!   unit testing).

use crate::lp::{LargePredictor, LpStats, Route};
use simcore::block::block_of;
use simcore::trace::{MemRef, StructId};

/// Per-access routing decision maker.
pub trait Router: Send {
    fn route(&mut self, r: &MemRef) -> Route;
    /// Router-internal statistics, if it keeps any.
    fn lp_stats(&self) -> Option<LpStats> {
        None
    }
    fn reset_stats(&mut self) {}
    /// Serialize router-internal training state, if any (stateless routers
    /// write nothing).
    fn save_state(&self, _w: &mut simstate::StateSink) {}
    /// Restore state saved by [`Router::save_state`].
    fn load_state(&mut self, _r: &mut simstate::StateSource) -> Result<(), simstate::StateError> {
        Ok(())
    }
}

/// The Large Predictor as a router (the SDC+LP system).
#[derive(Debug)]
pub struct LpRouter {
    pub lp: LargePredictor,
}

impl LpRouter {
    pub fn new(lp: LargePredictor) -> Self {
        LpRouter { lp }
    }
}

impl Router for LpRouter {
    fn route(&mut self, r: &MemRef) -> Route {
        self.lp.predict_and_train(u64::from(r.pc), block_of(r.addr))
    }

    fn lp_stats(&self) -> Option<LpStats> {
        Some(self.lp.stats)
    }

    fn reset_stats(&mut self) {
        self.lp.reset_stats();
    }

    fn save_state(&self, w: &mut simstate::StateSink) {
        self.lp.save_state(w);
    }

    fn load_state(&mut self, r: &mut simstate::StateSource) -> Result<(), simstate::StateError> {
        self.lp.load_state(r)
    }
}

/// Expert Programmer: data structures are statically classified as
/// cache-averse (route to SDC) or cache-friendly from source-code and
/// performance analysis; the classification arrives via the structure id
/// each instrumented access carries.
#[derive(Debug)]
pub struct ExpertRouter {
    averse: [bool; 256],
}

impl ExpertRouter {
    /// `averse_sids` lists the structure ids the expert sends to the SDC.
    pub fn new(averse_sids: &[StructId]) -> Self {
        let mut averse = [false; 256];
        for &sid in averse_sids {
            averse[sid as usize] = true;
        }
        ExpertRouter { averse }
    }
}

impl Router for ExpertRouter {
    fn route(&mut self, r: &MemRef) -> Route {
        if self.averse[r.sid as usize] {
            Route::Sdc
        } else {
            Route::Hierarchy
        }
    }
}

/// Routes every access the same way.
#[derive(Debug)]
pub struct StaticRouter(pub Route);

impl Router for StaticRouter {
    fn route(&mut self, _r: &MemRef) -> Route {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LpConfig;

    #[test]
    fn expert_router_follows_sid() {
        let mut r = ExpertRouter::new(&[3, 7]);
        assert_eq!(r.route(&MemRef::read(1, 3, 0)), Route::Sdc);
        assert_eq!(r.route(&MemRef::read(1, 7, 0)), Route::Sdc);
        assert_eq!(r.route(&MemRef::read(1, 2, 0)), Route::Hierarchy);
    }

    #[test]
    fn static_router_is_constant() {
        let mut s = StaticRouter(Route::Sdc);
        assert_eq!(s.route(&MemRef::read(0, 0, 0)), Route::Sdc);
        let mut h = StaticRouter(Route::Hierarchy);
        assert_eq!(h.route(&MemRef::write(0, 0, 0)), Route::Hierarchy);
    }

    #[test]
    fn lp_router_learns_irregularity() {
        let mut r = LpRouter::new(LargePredictor::new(LpConfig::table1()));
        let mut last = Route::Hierarchy;
        for i in 0..20u64 {
            last = r.route(&MemRef::read(9, 0, i * 64 * 100_000));
        }
        assert_eq!(last, Route::Sdc);
        assert!(r.lp_stats().unwrap().sdc_routes > 0);
    }
}
