#![forbid(unsafe_code)]
//! # sdclp — the Side Data Cache + Large Predictor proposal
//!
//! From-scratch implementation of the primary contribution of *Practically
//! Tackling Memory Bottlenecks of Graph-Processing Workloads* (Jamet et
//! al., IPDPS 2024):
//!
//! * [`lp::LargePredictor`] — a 552-byte, PC-indexed stride-accumulator
//!   predictor that classifies memory accesses as cache-friendly or
//!   cache-averse;
//! * [`system::SdcCore`] — the Side Data Cache path: an 8 KiB, 1-cycle
//!   cache beside the L1D that serves cache-averse accesses and bypasses
//!   the L2C/LLC on misses, fetching straight from DRAM;
//! * [`sdcdir::SdcDir`] — the directory extension keeping SDCs coherent
//!   with the conventional hierarchy;
//! * [`router`] — the LP router, the Expert Programmer router (Fig. 13),
//!   and static routers for the design-space sweeps;
//! * [`budget::HardwareBudget`] — Table IV storage accounting.
//!
//! ## Quick start
//!
//! ```
//! use sdclp::{sdclp_system, SdcLpConfig};
//! use simcore::{Engine, SystemConfig, Tracer, Window};
//!
//! let sys = sdclp_system(&SystemConfig::baseline(1), SdcLpConfig::table1());
//! let mut engine = Engine::new(sys, 4, 224, Window::new(0, 10_000));
//! for i in 0..1000u64 {
//!     engine.load(1, 0, (i * 1_000_003 % 1_000_000) * 64); // irregular
//!     engine.bubble(3);
//! }
//! let result = engine.finish();
//! assert!(result.ipc() > 0.0);
//! ```

pub mod budget;
pub mod config;
pub mod error;
pub mod lp;
pub mod router;
pub mod sdcdir;
pub mod system;

pub use budget::HardwareBudget;
pub use config::{LpConfig, SdcConfig, SdcDirConfig, SdcLpConfig};
pub use error::SimError;
pub use lp::{LargePredictor, Route};
pub use router::{ExpertRouter, LpRouter, Router, StaticRouter};
pub use sdcdir::SdcDir;
pub use system::{
    expert_system, sdclp_system, ExpertCore, ExpertSystem, SdcCore, SdcLpCore, SdcLpSystem,
};
