//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — structs with named fields and
//! enums with unit variants — by walking the raw [`proc_macro::TokenStream`]
//! directly (the container cannot fetch `syn`/`quote`). Unsupported shapes
//! (generics, tuple structs, data-carrying enum variants) panic at compile
//! time with a pointed message rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match item.shape {
        Shape::NamedStruct(fields) => {
            let mut src = String::from("out.push('{');");
            for (i, f) in fields.iter().enumerate() {
                src.push_str(&format!(
                    "::serde::write_field(out, {first}, \"{f}\", &self.{f});",
                    first = i == 0,
                ));
            }
            src.push_str("out.push('}');");
            src
        }
        Shape::UnitStruct => String::from("out.push_str(\"{}\");"),
        Shape::UnitEnum(variants) => {
            let mut arms = String::new();
            for v in &variants {
                arms.push_str(&format!("{name}::{v} => \"{v}\",", name = item.name));
            }
            format!("let s = match self {{ {arms} }}; ::serde::write_json_str(out, s);")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut String) {{ {body} }}\n\
         }}",
        name = item.name,
    )
    .parse()
    .expect("serde_derive stand-in generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("serde_derive stand-in generated invalid Rust")
}

enum Shape {
    NamedStruct(Vec<String>),
    UnitStruct,
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including expanded doc comments) and
    // visibility (`pub`, `pub(crate)`, ...).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stand-in: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stand-in: expected type name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in: generic type `{name}` is not supported");
        }
    }

    let shape = match (kind.as_str(), tokens.get(i)) {
        // `struct Name;` — unit struct.
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::UnitStruct,
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("serde_derive stand-in: tuple struct `{name}` is not supported")
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::UnitEnum(parse_unit_variants(&name, g.stream()))
        }
        (k, other) => {
            panic!("serde_derive stand-in: unsupported item `{k} {name}` (next token {other:?})")
        }
    };

    Item { name, shape }
}

/// Extract field names from the body of a braced struct: for each field,
/// skip attributes and visibility, take the ident before `:`, then skip the
/// type up to the next comma at angle-bracket depth zero.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    other => panic!(
                        "serde_derive stand-in: expected `:` after field `{id}`, got {other:?}"
                    ),
                }
                // Skip the type: consume to the next top-level comma. Parens
                // and brackets arrive as single Group tokens, so only angle
                // brackets need explicit depth tracking.
                let mut depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => panic!("serde_derive stand-in: unexpected token in struct body: {other:?}"),
        }
    }
    fields
}

/// Extract variant names from the body of an enum, requiring every variant
/// to be a unit variant (optionally with an explicit discriminant).
fn parse_unit_variants(enum_name: &str, body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let variant = id.to_string();
                i += 1;
                match tokens.get(i) {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        // Explicit discriminant: skip to the next comma.
                        while i < tokens.len() {
                            if let TokenTree::Punct(p) = &tokens[i] {
                                if p.as_char() == ',' {
                                    break;
                                }
                            }
                            i += 1;
                        }
                        i += 1;
                    }
                    Some(TokenTree::Group(_)) => panic!(
                        "serde_derive stand-in: enum `{enum_name}` variant `{variant}` \
                         carries data; only unit variants are supported"
                    ),
                    other => panic!(
                        "serde_derive stand-in: unexpected token after variant \
                         `{variant}`: {other:?}"
                    ),
                }
                variants.push(variant);
            }
            other => panic!("serde_derive stand-in: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}
