//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this vendors the macro
//! and method surface the workspace's benches use, backed by a simple
//! median-of-samples timer instead of criterion's full statistical
//! machinery. Good enough to smoke-run `cargo bench` and eyeball relative
//! throughput; not a replacement for real criterion numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a benchmark's element count scales reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level harness handle, passed `&mut` to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), throughput: None, sample_size: 20 }
    }
}

pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / median)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / median)
            }
            _ => String::new(),
        };
        println!("{}/{}: median {:.3} ms/iter{}", self.name, id, median * 1e3, rate);
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to the closure given to `bench_function`; `iter` times the body.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        black_box(body());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            runs += 1;
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
