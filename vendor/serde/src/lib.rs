//! Offline stand-in for the `serde` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the capability it actually needs from serde: `#[derive(Serialize)]`
//! producing machine-readable JSON (used by the run-manifest layer), and a
//! `Deserialize` marker so existing derives compile. The API is
//! deliberately small and self-describing: [`Serialize::serialize_json`]
//! appends a JSON value to a buffer, [`to_json_string`] is the one-call
//! entry point.

// Let the derive's `::serde::...` paths resolve inside this crate's own
// tests as well.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A type that can write itself as a JSON value.
pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

/// Marker for types whose `#[derive(Deserialize)]` must compile; no
/// deserialization machinery is vendored (nothing in this workspace parses
/// serialized configs back).
pub trait Deserialize {}

/// Serialize a value to a JSON string.
pub fn to_json_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value.serialize_json(&mut out);
    out
}

/// Append one `"name":value` object member (derive-generated code calls
/// this; `first` controls the separating comma).
pub fn write_field<T: Serialize + ?Sized>(out: &mut String, first: bool, name: &str, value: &T) {
    if !first {
        out.push(',');
    }
    write_json_str(out, name);
    out.push(':');
    value.serialize_json(out);
}

/// Append a JSON string literal with escaping.
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 40], format_args!("{}", self)));
            }
        }
    )*};
}

// Small helper avoiding a per-number String allocation where possible.
fn itoa_buf<'a>(buf: &'a mut [u8; 40], args: std::fmt::Arguments<'_>) -> &'a str {
    use std::io::Write;
    let mut cursor = std::io::Cursor::new(&mut buf[..]);
    // Numbers always fit in 40 bytes; fall back to "0" never happens.
    let _ = write!(cursor, "{args}");
    let len = cursor.position() as usize;
    std::str::from_utf8(&buf[..len]).unwrap_or("0")
}

impl_serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // Rust's shortest round-trip formatting; integral values get a
            // ".0" so the token stays a JSON number either way.
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        f64::from(*self).serialize_json(out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

fn write_seq<'a, T: Serialize + 'a>(out: &mut String, items: impl Iterator<Item = &'a T>) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_strings() {
        assert_eq!(to_json_string(&42u64), "42");
        assert_eq!(to_json_string(&-7i32), "-7");
        assert_eq!(to_json_string(&true), "true");
        assert_eq!(to_json_string(&1.5f64), "1.5");
        assert_eq!(to_json_string(&2.0f64), "2.0");
        assert_eq!(to_json_string(&f64::NAN), "null");
        assert_eq!(to_json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn sequences_and_options() {
        assert_eq!(to_json_string(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(to_json_string(&[0.5f64; 2]), "[0.5,0.5]");
        assert_eq!(to_json_string(&Some(5u32)), "5");
        assert_eq!(to_json_string(&Option::<u32>::None), "null");
    }

    #[test]
    fn derive_struct_and_enum() {
        #[derive(Serialize)]
        struct Inner {
            x: u64,
        }

        #[derive(Serialize)]
        enum Kind {
            Fast,
            #[allow(dead_code)]
            Slow,
        }

        /// Doc comments and attributes on fields must be skipped.
        #[derive(Serialize)]
        struct Outer {
            /// documented field
            name: String,
            kind: Kind,
            inner: Inner,
            values: Vec<u64>,
        }

        let o = Outer {
            name: "run".into(),
            kind: Kind::Fast,
            inner: Inner { x: 9 },
            values: vec![1, 2],
        };
        assert_eq!(
            to_json_string(&o),
            r#"{"name":"run","kind":"Fast","inner":{"x":9},"values":[1,2]}"#
        );
    }

    #[test]
    fn derive_deserialize_compiles() {
        #[derive(Serialize, Deserialize)]
        struct C {
            a: u8,
        }
        fn assert_marker<T: Deserialize>() {}
        assert_marker::<C>();
        assert_eq!(to_json_string(&C { a: 1 }), r#"{"a":1}"#);
    }
}
