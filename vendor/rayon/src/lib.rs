//! Offline stand-in for the `rayon` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the slice of rayon it uses: [`scope`] with [`Scope::spawn`], executed
//! on a bounded pool of OS threads sized by `RAYON_NUM_THREADS` (falling
//! back to the machine's available parallelism). There is no work
//! stealing — jobs drain from one shared FIFO — which is plenty for the
//! coarse-grained replay jobs this workspace fans out (each job simulates
//! millions of instructions; queue contention is noise).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Number of worker threads a [`scope`] uses: `RAYON_NUM_THREADS` when set
/// to a positive integer, else the available hardware parallelism.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

type Job<'env> = Box<dyn FnOnce(&Scope<'env>) + Send + 'env>;

struct Queue<'env> {
    jobs: VecDeque<Job<'env>>,
    /// Jobs currently executing on some worker.
    active: usize,
}

/// A spawn handle passed to the [`scope`] closure and to every job.
pub struct Scope<'env> {
    queue: Mutex<Queue<'env>>,
    wakeup: Condvar,
}

impl<'env> Scope<'env> {
    /// Queue `body` for execution inside this scope. Jobs may spawn
    /// further jobs; the scope only returns once the queue is fully
    /// drained and every job has finished.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        let mut q = self.queue.lock().unwrap();
        q.jobs.push_back(Box::new(body));
        drop(q);
        self.wakeup.notify_one();
    }
}

/// Run `op`, executing every job it spawns (directly or transitively) on a
/// bounded worker pool, and return once all jobs have completed.
///
/// Panics in jobs propagate: the scope unwinds with the worker thread's
/// panic once all other workers have stopped.
pub fn scope<'env, F, R>(op: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let sc = Scope {
        queue: Mutex::new(Queue { jobs: VecDeque::new(), active: 0 }),
        wakeup: Condvar::new(),
    };
    let result = op(&sc);
    let workers = current_num_threads().max(1);
    std::thread::scope(|ts| {
        for _ in 0..workers {
            ts.spawn(|| worker_loop(&sc));
        }
    });
    result
}

fn worker_loop<'env>(sc: &Scope<'env>) {
    // Decrements `active` even if the job unwinds, so a panicking job
    // cannot leave sibling workers parked forever; the panic then
    // propagates out of `std::thread::scope`.
    struct ActiveGuard<'a, 'env>(&'a Scope<'env>);
    impl Drop for ActiveGuard<'_, '_> {
        fn drop(&mut self) {
            let mut q = self.0.queue.lock().unwrap();
            q.active -= 1;
            if q.active == 0 && q.jobs.is_empty() {
                // Last job out: release any workers parked on the queue.
                self.0.wakeup.notify_all();
            }
        }
    }

    let mut q = sc.queue.lock().unwrap();
    loop {
        if let Some(job) = q.jobs.pop_front() {
            q.active += 1;
            drop(q);
            let guard = ActiveGuard(sc);
            job(sc);
            drop(guard);
            q = sc.queue.lock().unwrap();
        } else if q.active == 0 {
            return;
        } else {
            // Jobs are in flight and may spawn more; park until the queue
            // changes.
            q = sc.wakeup.wait(q).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_spawned_jobs_run() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_spawns_complete_before_scope_returns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|s2| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    s2.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn scope_returns_op_result() {
        let r = scope(|s| {
            s.spawn(|_| {});
            42
        });
        assert_eq!(r, 42);
    }

    #[test]
    fn jobs_can_borrow_environment() {
        let data = vec![1u64, 2, 3, 4];
        let sums: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        scope(|s| {
            for &x in &data {
                let sums = &sums;
                s.spawn(move |_| {
                    sums.lock().unwrap().push(x * 10);
                });
            }
        });
        let mut got = sums.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![10, 20, 30, 40]);
    }
}
