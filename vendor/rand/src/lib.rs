//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build container has no crates.io access, so the workspace vendors
//! the slice of rand it uses: a seedable `StdRng` plus `Rng::random` /
//! `Rng::random_range`. The generator is xoshiro256** seeded through
//! SplitMix64 — a different stream than upstream `StdRng` (ChaCha12), but
//! every consumer in this workspace only requires determinism for a fixed
//! seed, which this provides.

/// A source of random bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the subset of
/// rand's `StandardUniform` distribution this workspace draws).
pub trait FromRng: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in [0, 1): 53 high bits scaled by 2^-53.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (rand's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the plain approach is avoided without
                // rejection loops.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi as u128 - lo as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// The user-facing sampling API (rand 0.9 names).
pub trait Rng: RngCore {
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** (Blackman & Vigna), seeded via SplitMix64. Fast,
    /// deterministic, and of ample quality for synthetic-graph generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(3usize..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampling missed a bucket");
    }

    #[test]
    fn signed_and_inclusive_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.random_range(0u32..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5u64..5);
    }
}
