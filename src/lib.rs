//! # sdclp-repro
//!
//! Reproduction of *Practically Tackling Memory Bottlenecks of
//! Graph-Processing Workloads* (Jamet, Vavouliotis, Jiménez, Alvarez,
//! Casas — IPDPS 2024): the Side Data Cache + Large Predictor (SDC+LP)
//! proposal, its ChampSim-style simulation substrate, the GAP kernels as
//! instrumented trace generators, every baseline the paper compares
//! against, and the harness that regenerates every figure and table of
//! the evaluation.
//!
//! This umbrella crate re-exports the workspace's five libraries:
//!
//! * [`sim`] (`simcore`) — the timing simulator: caches, MSHRs, DDR4-like
//!   DRAM, prefetchers, TLBs, ROB core model, single/multi-core engines.
//! * [`proposal`] (`sdclp`) — the paper's contribution: the Large
//!   Predictor, the Side Data Cache, the SDCDir, and complete SDC+LP
//!   memory systems.
//! * [`graph`] (`gpgraph`) — CSR/CSC representation and the six Table III
//!   input-graph generators.
//! * [`kernels`] (`gpkernels`) — the six GAP kernels (BC, BFS, CC, PR,
//!   TC, SSSP), instrumented and validated against independent reference
//!   implementations.
//! * [`workloads`] (`gpworkloads`) — the 36 single-core workloads, the 50
//!   multi-core mixes, the regular (SPEC stand-in) suite, the seven
//!   evaluated designs, and the trace-caching experiment [`Runner`].
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]

pub use gpgraph as graph;
pub use gpkernels as kernels;
pub use gpworkloads as workloads;
pub use sdclp as proposal;
pub use simcore as sim;

pub use gpworkloads::{Runner, SystemKind, Workload};
pub use sdclp::{sdclp_system, SdcLpConfig};
pub use simcore::{BaselineHierarchy, Engine, SystemConfig, Window};
